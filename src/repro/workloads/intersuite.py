"""The interprocedural suite: multi-function, call-dominated programs.

Four programs whose interesting branches test *call results*, not
locally computed values.  Each helper is pure but is invoked from at
least one call site with an unanalysable (⊥) argument, so the
context-insensitive merge of Patterson §3.7 poisons the merged
parameter ranges and every caller-side branch on a return value falls
back to heuristics.  With ``--context-depth k >= 1`` the k-limited
contexts re-analyse the helpers per abstracted argument tuple and the
narrow call sites recover range-based predictions:

* ``inter_dispatch`` -- one affine helper, two narrow sites and one ⊥
  site; k=1 already recovers both narrow-site branches;
* ``inter_pipeline`` -- a two-deep helper chain; k=1 is *not* enough
  (the inner call still sees the merged ⊥ summary) but k=2 recovers it;
* ``inter_mixpair``  -- a two-parameter helper exercising tuple-shaped
  context keys;
* ``inter_recurse``  -- a self-recursive helper; recursion keeps the
  return range unknown at every k (the context cycle guard answers
  with the merged fixed point), pinning the no-regression baseline.

The helpers stay away from ``%`` as the *last* operation on the
unknown-argument path on purpose: floor modulo bounds its result even
for a ⊥ operand, which would un-poison the merged summary and erase
the very effect this suite measures.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, lcg_stream, register

DISPATCH_SOURCE = """
func affine(v) {
  return v * 3 + 1;
}

func main(n) {
  var low = 0;
  var high = 0;
  var wild = 0;
  for (i = 0; i < n; i = i + 1) {
    var x = input();
    var a8 = x % 8;
    var a = affine(a8);
    if (a < 12) { low = low + 1; } else { high = high + 1; }
    var a4 = x % 4;
    var b = affine(a4);
    if (b < 7) { low = low + 1; }
    var w = affine(x);
    if (w < 0) { wild = wild + 1; }
  }
  return low * 1000 + high * 10 + wild % 10;
}
"""

register(
    Workload(
        name="inter_dispatch",
        suite="inter",
        description="Affine helper with narrow and unknown call sites (k=1 wins)",
        source=DISPATCH_SOURCE,
        train_args=[80],
        ref_args=[640],
        train_inputs=lcg_stream(131, 80),
        ref_inputs=lcg_stream(733, 640),
    )
)


PIPELINE_SOURCE = """
func inner(v) {
  return v * 2 + 1;
}

func outer(v) {
  var w = inner(v);
  return w + v;
}

func main(n) {
  var small = 0;
  var big = 0;
  var noise = 0;
  for (i = 0; i < n; i = i + 1) {
    var x = input();
    var x4 = x % 4;
    var y = outer(x4);
    if (y < 5) { small = small + 1; } else { big = big + 1; }
    var z = inner(x);
    if (z < 0) { noise = noise + 1; }
  }
  return small * 1000 + big * 10 + noise % 10;
}
"""

register(
    Workload(
        name="inter_pipeline",
        suite="inter",
        description="Two-deep helper chain: k=1 still merged, k=2 recovers",
        source=PIPELINE_SOURCE,
        train_args=[80],
        ref_args=[640],
        train_inputs=lcg_stream(269, 80),
        ref_inputs=lcg_stream(881, 640),
    )
)


MIXPAIR_SOURCE = """
func mix(a, b) {
  return a * 4 + b * 2 + 1;
}

func main(n) {
  var lowc = 0;
  var midc = 0;
  var t = 0;
  for (i = 0; i < n; i = i + 1) {
    var x = input();
    var p4 = x % 4;
    var p2 = x % 2;
    var p = mix(p4, p2);
    if (p < 9) { lowc = lowc + 1; }
    var q8 = x % 8;
    var q4 = x % 4;
    var q = mix(q8, q4);
    if (q < 20) { midc = midc + 1; }
    var r = mix(x, 1);
    if (r < 0) { t = t + 1; }
  }
  return lowc * 10000 + midc * 100 + t % 100;
}
"""

register(
    Workload(
        name="inter_mixpair",
        suite="inter",
        description="Two-parameter helper exercising tuple context keys",
        source=MIXPAIR_SOURCE,
        train_args=[80],
        ref_args=[640],
        train_inputs=lcg_stream(421, 80),
        ref_inputs=lcg_stream(977, 640),
    )
)


RECURSE_SOURCE = """
func fact(v) {
  if (v < 2) { return 1; }
  var r = fact(v - 1);
  return v * r;
}

func main(n) {
  var acc = 0;
  for (i = 0; i < n; i = i + 1) {
    var x = input();
    var x6 = x % 6;
    var f = fact(x6);
    if (f > 10) { acc = acc + 1; }
  }
  return acc;
}
"""

register(
    Workload(
        name="inter_recurse",
        suite="inter",
        description="Self-recursive helper: cycle guard keeps every k honest",
        source=RECURSE_SOURCE,
        train_args=[80],
        ref_args=[640],
        train_inputs=lcg_stream(577, 80),
        ref_inputs=lcg_stream(601, 640),
    )
)
