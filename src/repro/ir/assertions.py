"""Assertion (Pi node) insertion after conditional branches.

The paper (Figure 3 and footnote 4) places assertions along the out-edges
of conditional branches: on the true edge of ``x < 10`` the variable ``x``
is known to satisfy ``x < 10``, on the false edge ``x >= 10``.  We encode
an assertion as a :class:`~repro.ir.instructions.Pi` copy at the top of
the edge's destination block, which must therefore have that branch as
its unique predecessor -- run
:func:`repro.ir.cfg.split_critical_edges` first.

Insertion happens *before* SSA construction: the Pi assigns to the same
variable name it reads, and SSA renaming then gives the asserted value a
fresh version which dominates all uses below the branch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Cmp,
    CMP_NEGATION,
    CMP_SWAP,
    Instruction,
    Pi,
)
from repro.ir.values import Constant, Temp, Value


def insert_assertions(function: Function) -> int:
    """Insert Pi nodes for every conditional branch; returns count inserted.

    For a branch on ``lhs relop rhs`` the true successor receives
    ``lhs = pi lhs assuming (lhs relop rhs)`` (and the swapped assertion
    for ``rhs`` when it is a variable); the false successor receives the
    negated assertions.
    """
    pred_count: Dict[str, int] = {label: 0 for label in function.blocks}
    for block in function.blocks.values():
        for succ in block.successors():
            pred_count[succ] += 1

    inserted = 0
    for block in list(function.blocks.values()):
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        condition = _find_condition(block.instructions, term.cond)
        if condition is None:
            continue
        op, lhs, rhs = condition
        for target, effective_op in (
            (term.true_target, op),
            (term.false_target, CMP_NEGATION[op]),
        ):
            if pred_count[target] != 1 or target == block.label:
                # No unique home for the assertion (unsplit critical edge
                # or a self loop) -- skip rather than assert unsoundly.
                continue
            inserted += _insert_edge_assertions(
                function, target, effective_op, lhs, rhs, loc=term.loc
            )
    return inserted


def _find_condition(
    instructions: List[Instruction], cond: Value
) -> Optional[Tuple[str, Value, Value]]:
    """Resolve the branch condition to ``(relop, lhs, rhs)`` if possible.

    The condition temp must be defined by a Cmp in the same block (the
    lowering always arranges this); otherwise treat ``cond != 0``.
    """
    if isinstance(cond, Constant):
        return None
    if not isinstance(cond, Temp):
        return None
    for instr in reversed(instructions):
        result = instr.result
        if result is not None and result == cond:
            if isinstance(instr, Cmp):
                return instr.op, instr.lhs, instr.rhs
            return "ne", cond, Constant(0)
    # Defined in another block: still assert cond != 0 on the true edge.
    return "ne", cond, Constant(0)


def _insert_edge_assertions(
    function: Function,
    target_label: str,
    op: str,
    lhs: Value,
    rhs: Value,
    loc: Optional[int] = None,
) -> int:
    """Insert assertions for both comparison operands into ``target_label``."""
    target = function.block(target_label)
    inserted = 0
    position = 0
    if isinstance(lhs, Temp) and lhs != rhs:
        pi = Pi(Temp(lhs.name), Temp(lhs.name), op, rhs, parent=lhs.name)
        pi.loc = loc
        target.insert(position, pi)
        position += 1
        inserted += 1
    if isinstance(rhs, Temp) and lhs != rhs:
        swapped = CMP_SWAP[op]
        pi = Pi(Temp(rhs.name), Temp(rhs.name), swapped, lhs, parent=rhs.name)
        pi.loc = loc
        target.insert(position, pi)
        inserted += 1
    return inserted
