"""Unreachable-code detection via value range propagation.

Paper §6: "branches to unreachable code have a probability of 0" --
just as constant propagation with conditional branches discovers
unreachable blocks, VRP's edge probabilities expose them, and more
often (a range can prove a branch one-sided even when no operand is a
single constant).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.core.propagation import FunctionPrediction
from repro.ir.cfg import CFG
from repro.ir.function import Function


def unreachable_blocks(
    function: Function, prediction: FunctionPrediction, threshold: float = 0.0
) -> Set[str]:
    """Blocks whose execution frequency is (at or below ``threshold``) zero.

    With the default threshold this is exact "never executed according
    to the analysis"; a small positive threshold finds nearly-dead code
    for layout purposes.
    """
    cfg = CFG(function)
    return {
        label
        for label in cfg.reachable()
        if label != function.entry_label
        and prediction.block_frequency.get(label, 0.0) <= threshold
    }


def dead_edges(
    function: Function, prediction: FunctionPrediction
) -> List[Tuple[str, str]]:
    """CFG edges the analysis proves are never taken (probability 0)."""
    cfg = CFG(function)
    out: List[Tuple[str, str]] = []
    for src, dst in cfg.edges():
        if prediction.block_frequency.get(src, 0.0) <= 0.0:
            continue  # whole block dead: reported by unreachable_blocks
        if prediction.edge_frequency.get((src, dst), 0.0) <= 0.0:
            out.append((src, dst))
    return out
