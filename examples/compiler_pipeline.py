"""A full compiler-style pipeline over a multi-function program.

Demonstrates everything a compiler would do with VRP (paper §6):

1. parse and lower a program with helpers, arrays and loops;
2. run interprocedural value range propagation (jump functions);
3. report branch predictions and where heuristics were needed;
4. apply the optimisation clients: constant/copy subsumption,
   unreachable code, bounds-check elimination, alias disambiguation;
5. perform procedure cloning for divergent call contexts and show the
   per-clone predictions sharpening.

Run:  python examples/compiler_pipeline.py
"""

from repro.core import VRPPredictor, clone_for_contexts
from repro.ir import prepare_module
from repro.ir.ssa import SSAInfo
from repro.lang import compile_source
from repro.opt import (
    analyse_bounds_checks,
    constants_from_prediction,
    dead_edges,
    eliminated_fraction,
    independent_pairs,
    collect_accesses,
    unreachable_blocks,
)

PROGRAM = """
func clamp(v, limit) {
  if (v > limit) { return limit; }
  if (v < 0) { return 0; }
  return v;
}

func smooth(width) {
  array buf[256];
  for (i = 0; i < width; i = i + 1) {
    buf[i] = clamp(input() % 300, 255);
  }
  var total = 0;
  for (i = 1; i < width - 1; i = i + 1) {
    buf[i] = (buf[i - 1] + buf[i] + buf[i + 1]) / 3;
    total = total + buf[i];
  }
  return total;
}

func main(n) {
  var debug = 0;
  var result = smooth(64) + smooth(240);
  if (debug == 1) { result = result * 0; }   // provably dead
  return result;
}
"""


def main() -> None:
    module = compile_source(PROGRAM)
    ssa_infos = prepare_module(module)
    predictor = VRPPredictor()
    prediction = predictor.predict_module(module, ssa_infos)

    print("=== Branch predictions (interprocedural VRP) ===")
    for (function, label), probability in sorted(prediction.all_branches().items()):
        marker = " (heuristic)" if (function, label) in prediction.heuristic_branches() else ""
        print(f"  {function:8s} {label:10s} P(taken) = {probability:6.1%}{marker}")

    main_prediction = prediction.functions["main"]
    print()
    print("=== Subsumed classical optimisations in main() ===")
    constants = constants_from_prediction(main_prediction)
    print(f"  constants discovered: {len(constants)}")
    dead = unreachable_blocks(module.function("main"), main_prediction)
    print(f"  unreachable blocks:   {sorted(dead)}")
    print(f"  never-taken edges:    {dead_edges(module.function('main'), main_prediction)}")

    smooth_prediction = prediction.functions["smooth"]
    print()
    print("=== Array clients in smooth() ===")
    reports = analyse_bounds_checks(module.function("smooth"), smooth_prediction)
    print(
        f"  bounds checks: {len(reports)} accesses, "
        f"{eliminated_fraction(reports):.0%} proven redundant"
    )
    accesses = collect_accesses(module.function("smooth"), smooth_prediction)
    pairs = independent_pairs(accesses)
    independent = sum(1 for pair in pairs if pair.independent)
    print(f"  alias pairs: {independent}/{len(pairs)} proven independent")

    print()
    print("=== Procedure cloning for divergent contexts ===")
    report = clone_for_contexts(module, prediction)
    for original, variants in report.variants.items():
        print(f"  {original} -> {variants}")
    # Re-analyse with the clones in place.
    for name, function in module.functions.items():
        if name not in ssa_infos:
            info = SSAInfo()
            for param in function.params:
                info.param_names[param] = f"{param}.0"
            ssa_infos[name] = info
    refined = predictor.predict_module(module, ssa_infos)
    for original, variants in report.variants.items():
        for variant in variants:
            loops = {
                label: probability
                for label, probability in refined.functions[variant]
                .branch_probability.items()
            }
            print(f"    {variant:16s} {', '.join(f'{l}={p:.3f}' for l, p in sorted(loops.items()))}")


if __name__ == "__main__":
    main()
