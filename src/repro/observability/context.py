"""Request-scoped trace context: trace_id / span_id propagation.

A :class:`TraceContext` identifies one logical request as it crosses
process boundaries: ``repro submit`` mints a ``trace_id``, carries it
to the daemon in the ``X-Repro-Trace-Id`` header, and the daemon
attaches it to its access-log line, its ``server.request.*`` events,
and every engine span recorded while serving that request.  Correlating
a slow request is then one grep by trace id across client output,
server logs, and exported traces (``docs/OBSERVABILITY.md``).

Like the tracer and the work counters, the current context rides a
:class:`contextvars.ContextVar`: nothing is threaded through call
signatures, and thread/async handoffs that copy the context (or call
:func:`use` explicitly, as the serving workers do) see the right ids.

The off path is one ``ContextVar.get`` with a default -- no allocation,
no locking -- and nothing in the analysis engine ever *reads* the
context unless a recording tracer is active, so the work counts the
overhead-guard benchmark protects cannot move.

Identifiers follow the W3C trace-context shape: 32 lowercase hex chars
for a trace id, 16 for a span id.  They are random (``os.urandom``),
not derived from analysis inputs -- telemetry identity, never cache
identity.
"""

from __future__ import annotations

import contextvars
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

#: HTTP header carrying the trace id from client to daemon.
TRACE_HEADER = "X-Repro-Trace-Id"

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


def valid_trace_id(value: object) -> bool:
    """Whether ``value`` is a well-formed trace id (for header parsing)."""
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


def valid_span_id(value: object) -> bool:
    return isinstance(value, str) and bool(_SPAN_ID_RE.match(value))


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: where it is in the span tree."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A child context: same trace, fresh span, this span as parent."""
        return replace(self, span_id=new_span_id(), parent_span_id=self.span_id)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }


def mint(trace_id: Optional[str] = None) -> TraceContext:
    """A root context: given (or fresh) trace id, fresh span id, no parent."""
    return TraceContext(
        trace_id=trace_id if trace_id else new_trace_id(),
        span_id=new_span_id(),
    )


_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro-trace-context", default=None
)


def current() -> Optional[TraceContext]:
    """The ambient trace context, or ``None`` outside any traced request."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """Just the trace id of the ambient context (the common log field)."""
    context = _CURRENT.get()
    return context.trace_id if context is not None else None


@contextmanager
def use(context: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``context`` ambient for the duration of the block."""
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)
