"""The HTTP daemon: endpoints, backpressure, degradation, drain."""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.observability.metrics import validate_report_dict
from repro.server import ReproServer, ServeClient, ServerError

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i > 90) { total = total + i; }
  }
  return total;
}
"""


def start_server(**kwargs):
    server = ReproServer(port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.port)
    client.wait_ready()
    return server, client


def raw_post(port, path, body_bytes, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("POST", path, body=body_bytes, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


@pytest.fixture
def served():
    server, client = start_server(workers=2, queue_size=8)
    yield server, client
    server.drain(timeout=10)


class TestEndpoints:
    def test_healthz(self, served):
        _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["inflight"] == 0

    def test_predict_roundtrip(self, served):
        _, client = served
        response = client.analyze("predict", PROGRAM)
        assert response["status"] == "ok"
        assert response["output"].startswith("function")
        assert response["cached"] is None
        assert client.analyze("predict", PROGRAM)["cached"] == "memory"

    def test_analyze_route_takes_command_from_body(self, served):
        _, client = served
        status, document = client.request_json(
            "POST", "/v1/analyze", {"command": "ir", "source": PROGRAM}
        )
        assert status == 200
        assert document["command"] == "ir"

    def test_command_endpoint_mismatch_is_rejected(self, served):
        _, client = served
        status, document = client.request_json(
            "POST", "/v1/predict", {"command": "ir", "source": PROGRAM}
        )
        assert status == 400
        assert "endpoint" in document["error"]

    def test_batch_preserves_order(self, served):
        _, client = served
        items = [
            {"command": "run", "source": f"func main(n) {{ return {i}; }}",
             "options": {"args": [0]}}
            for i in range(5)
        ]
        results = client.batch(items)
        assert [r["output"].splitlines()[0] for r in results] == [
            f"return value: {i}" for i in range(5)
        ]

    def test_unknown_routes_404(self, served):
        server, client = served
        status, _ = client.request_json("GET", "/nope")
        assert status == 404
        status, _, _ = raw_post(server.port, "/v1/nope", b"{}")
        assert status == 404

    def test_metricsz_is_a_valid_v5_document(self, served):
        _, client = served
        client.analyze("predict", PROGRAM)
        document = client.metricsz()
        assert validate_report_dict(document) is None
        assert document["schema_version"] == 8
        assert document["program"] == "repro-serve"
        server_block = document["server"]
        assert server_block["endpoints"]["/v1/predict"]["count"] == 1
        assert "le_1ms" in server_block["endpoints"]["/v1/predict"]["histogram"]
        assert server_block["cache"]["memory"]["entries"] == 1
        assert server_block["tracer"]["event_counts"]["server.request.begin"] >= 1


class TestRejection:
    def test_bad_json_is_400(self, served):
        server, _ = served
        status, _, body = raw_post(server.port, "/v1/predict", b"{not json")
        assert status == 400
        assert b"not valid JSON" in body

    def test_missing_length_is_411(self, served):
        server, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/predict")
            connection.endheaders()
            assert connection.getresponse().status == 411
        finally:
            connection.close()

    def test_oversized_body_is_413(self):
        server, client = start_server(workers=1, queue_size=2, max_request_bytes=64)
        try:
            with pytest.raises(ServerError) as excinfo:
                client.analyze("predict", PROGRAM)
            assert excinfo.value.status == 413
            assert server.stats.snapshot()["rejected"]["too_large"] == 1
        finally:
            server.drain(timeout=10)

    def test_protocol_violation_is_400(self, served):
        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.analyze("predict", PROGRAM, options={"typo": True})
        assert excinfo.value.status == 400


class TestBackpressure:
    def test_full_queue_is_503_with_retry_after(self):
        server, client = start_server(workers=1, queue_size=1)
        release = threading.Event()
        running = threading.Event()
        try:
            # Park the only worker, then fill the one queue slot.
            server.pool.submit(lambda: (running.set(), release.wait(10)))
            assert running.wait(timeout=5)
            server.pool.submit(lambda: None)
            status, headers, body = raw_post(
                server.port,
                "/v1/predict",
                json.dumps({"source": PROGRAM}).encode("utf-8"),
            )
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert b"queue full" in body
            assert server.stats.snapshot()["rejected"]["queue_full"] == 1
        finally:
            release.set()
            server.drain(timeout=10)


class TestDegradation:
    def test_tiny_timeout_degrades_predict(self):
        server, client = start_server(workers=2, queue_size=8, timeout_s=0.0)
        try:
            response = client.analyze("predict", PROGRAM)
            assert response["degraded"] is True
            body = response["output"].splitlines()[1:]
            assert body and all("heuristic" in line for line in body)
            assert server.stats.snapshot()["degraded"] == 1
        finally:
            server.drain(timeout=10)


class TestDrain:
    def test_drain_finishes_inflight_requests(self):
        server, client = start_server(workers=1, queue_size=8)
        release = threading.Event()
        running = threading.Event()
        server.pool.submit(lambda: (running.set(), release.wait(10)))
        assert running.wait(timeout=5)

        outcome = {}

        def post():
            try:
                outcome["response"] = client.analyze("predict", PROGRAM)
            except ServerError as error:
                outcome["error"] = error

        poster = threading.Thread(target=post)
        poster.start()
        # Wait until the request is queued behind the parked job.
        deadline = time.monotonic() + 5
        while server.pool.depth() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.pool.depth() == 2

        threading.Timer(0.1, release.set).start()
        assert server.drain(timeout=10) is True
        poster.join(timeout=10)
        assert "response" in outcome, outcome.get("error")
        assert outcome["response"]["status"] == "ok"

    def test_drained_server_stops_answering(self, served):
        server, client = served
        assert server.drain(timeout=10) is True
        with pytest.raises(ServerError):
            client.healthz()


class TestServeDaemonProcess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            ready = process.stdout.readline()
            assert "listening on" in ready
            port = int(ready.split("listening on ")[1].split()[0].split(":")[1])
            client = ServeClient(port=port)
            response = client.analyze("predict", PROGRAM)
            assert response["status"] == "ok"
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "draining" in out
        assert "drained" in out
