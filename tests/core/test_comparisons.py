"""Comparison probability tests."""

import pytest

from repro.core.bounds import Bound, NEG_INF, POS_INF
from repro.core.comparisons import compare_sets
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP


def probability(op, a, b, **kwargs):
    outcome = compare_sets(op, a, b, **kwargs)
    assert outcome is not None
    assert outcome.is_known(), f"unexpected unknown mass {outcome.unknown_mass}"
    return outcome.probability


class TestLatticeInputs:
    def test_top_or_bottom_yields_none(self):
        assert compare_sets("lt", TOP, RangeSet.constant(1)) is None
        assert compare_sets("lt", RangeSet.constant(1), BOTTOM) is None


class TestExactCounting:
    def test_paper_loop_branch(self):
        # x1 in [0:10], P(x1 < 10) = 10/11 (the paper's "91% taken").
        p = probability("lt", RangeSet.span(0, 10), RangeSet.constant(10))
        assert p == pytest.approx(10 / 11)

    def test_paper_equality_branch(self):
        y2 = RangeSet.from_ranges(
            [StridedRange.span(0.8, 0, 7, 1), StridedRange.single(0.2, 1)]
        )
        p = probability("eq", y2, RangeSet.constant(1))
        assert p == pytest.approx(0.3)

    def test_all_six_operators_consistent(self):
        a = RangeSet.span(0, 9)
        b = RangeSet.span(5, 14)
        p_lt = probability("lt", a, b)
        p_eq = probability("eq", a, b)
        p_gt = probability("gt", a, b)
        assert p_lt + p_eq + p_gt == pytest.approx(1.0)
        assert probability("le", a, b) == pytest.approx(p_lt + p_eq)
        assert probability("ge", a, b) == pytest.approx(p_gt + p_eq)
        assert probability("ne", a, b) == pytest.approx(1.0 - p_eq)

    def test_exact_lt_brute_force_cross_check(self):
        a_values = list(range(0, 21, 3))
        b_values = list(range(5, 15, 2))
        expected = sum(1 for x in a_values for y in b_values if x < y) / (
            len(a_values) * len(b_values)
        )
        p = probability("lt", RangeSet.span(0, 20, 3), RangeSet.span(5, 14, 2))
        assert p == pytest.approx(expected)

    def test_eq_progression_intersection(self):
        # {0,3,6,...,30} vs {0,5,10,...,30}: common points {0,15,30}.
        a = RangeSet.span(0, 30, 3)
        b = RangeSet.span(0, 30, 5)
        p = probability("eq", a, b)
        assert p == pytest.approx(3 / (11 * 7))

    def test_eq_disjoint_progressions(self):
        # Evens vs odds never intersect.
        p = probability("eq", RangeSet.span(0, 100, 2), RangeSet.span(1, 101, 2))
        assert p == 0.0

    def test_single_vs_single(self):
        assert probability("eq", RangeSet.constant(5), RangeSet.constant(5)) == 1.0
        assert probability("lt", RangeSet.constant(4), RangeSet.constant(5)) == 1.0
        assert probability("ge", RangeSet.constant(4), RangeSet.constant(5)) == 0.0


class TestDecisive:
    def test_disjoint_ranges_decide_order(self):
        assert probability("lt", RangeSet.span(0, 5), RangeSet.span(10, 20)) == 1.0
        assert probability("gt", RangeSet.span(0, 5), RangeSet.span(10, 20)) == 0.0

    def test_half_open_ranges_decide(self):
        above = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.number(100), Bound.number(POS_INF), 1)]
        )
        assert probability("gt", above, RangeSet.span(0, 50)) == 1.0

    def test_symbolic_decisive(self):
        # x in [n+1 : n+5] is always greater than n.
        x = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.symbolic("n", 1), Bound.symbolic("n", 5), 1)]
        )
        n = RangeSet.symbol("n")
        assert probability("gt", x, n) == 1.0
        assert probability("le", x, n) == 0.0


class TestCorrelation:
    def test_operand_name_triggers_symbolic_comparison(self):
        # x in [n-4 : n-1]; comparing against the variable n itself must
        # use the correlation, not n's numeric range.
        x = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.symbolic("n.0", -4), Bound.symbolic("n.0", -1), 1)]
        )
        n_range = RangeSet.span(0, 1000)
        assert probability("lt", x, n_range, b_name="n.0") == 1.0

    def test_without_name_correlation_is_lost(self):
        x = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.symbolic("n.0", -4), Bound.symbolic("n.0", -1), 1)]
        )
        outcome = compare_sets("lt", x, RangeSet.span(0, 1000))
        assert outcome.unknown_mass == pytest.approx(1.0)

    def test_copy_equality(self):
        x = RangeSet.symbol("y.0")
        assert probability("eq", x, RangeSet.span(0, 10), b_name="y.0") == 1.0


class TestContinuousApproximation:
    def test_wide_identical_ranges_near_half(self):
        wide = RangeSet.span(0, 10**7)
        p = probability("lt", wide, wide)
        assert p == pytest.approx(0.5, abs=0.01)

    def test_wide_shifted_ranges(self):
        a = RangeSet.span(0, 10**7)
        b = RangeSet.span(5 * 10**6, 15 * 10**6)
        p = probability("lt", a, b)
        assert 0.8 < p < 0.95  # exact continuous answer is 0.875

    def test_unbounded_overlap_is_unknown(self):
        half_open = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.number(0), Bound.number(POS_INF), 1)]
        )
        outcome = compare_sets("lt", half_open, RangeSet.span(0, 100))
        assert outcome.unknown_mass == pytest.approx(1.0)


class TestIntegration:
    def test_triangular_loop_integration(self):
        # j in [0 : i+1], i uniform in [0:47]: P(j <= i) = avg (i+1)/(i+2).
        j = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.number(0), Bound.symbolic("i.4", 1), 1)]
        )
        i = RangeSet.symbol("i.4")
        i_distribution = RangeSet.span(0, 47)
        expected = sum((v + 1) / (v + 2) for v in range(48)) / 48
        outcome = compare_sets(
            "le", j, i_distribution, b_name="i.4",
            symbol_range=lambda name: i_distribution if name == "i.4" else None,
        )
        assert outcome.is_known()
        assert outcome.probability == pytest.approx(expected, abs=1e-9)

    def test_integration_requires_lookup(self):
        j = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.number(0), Bound.symbolic("i", 1), 1)]
        )
        outcome = compare_sets("le", j, RangeSet.span(0, 47), b_name="i")
        assert outcome.unknown_mass == pytest.approx(1.0)

    def test_integration_samples_wide_symbol_ranges(self):
        j = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.number(0), Bound.symbolic("i", 0), 1)]
        )
        distribution = RangeSet.span(1, 100000)
        outcome = compare_sets(
            "lt", j, distribution, b_name="i",
            symbol_range=lambda name: distribution,
        )
        assert outcome.is_known()
        # P(j < i | j in [0:i]) = i/(i+1), which is near 1 for large i.
        assert outcome.probability > 0.9


class TestWeightedMixtures:
    def test_partial_unknown_mass(self):
        mixed = RangeSet.from_ranges(
            [StridedRange.span(0.5, 0, 9, 1), StridedRange.symbol(0.5, "q")]
        )
        outcome = compare_sets("lt", mixed, RangeSet.constant(5))
        assert outcome.unknown_mass == pytest.approx(0.5)
        assert outcome.probability == pytest.approx(0.25)  # 0.5 * 5/10
        assert outcome.estimate() == pytest.approx(0.5)
