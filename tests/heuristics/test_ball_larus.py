"""Ball-Larus heuristic tests."""

import pytest

from repro.heuristics.ball_larus import (
    BallLarusPredictor,
    LOOP_BRANCH_PROB,
    OPCODE_PROB,
    RETURN_PROB,
    call_heuristic,
    loop_branch_heuristic,
    opcode_heuristic,
    pointer_heuristic,
    return_heuristic,
    store_heuristic,
)
from repro.heuristics.base import FunctionContext
from repro.ir.instructions import Branch

from tests.helpers import prepare_single


def context_and_branches(source):
    function, _ = prepare_single(source)
    context = FunctionContext(function)
    return context, dict(context.branches())


class TestLoopBranchHeuristic:
    def test_loop_continuation_predicted_taken(self):
        context, branches = context_and_branches(
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        (label, branch), = branches.items()
        estimate = loop_branch_heuristic(context, label, branch)
        assert estimate == pytest.approx(LOOP_BRANCH_PROB)

    def test_do_while_latch_predicted_taken(self):
        context, branches = context_and_branches(
            "func main(n) { var t = 0; do { t = t + 1; } while (t < 10); return t; }"
        )
        (label, branch), = branches.items()
        estimate = loop_branch_heuristic(context, label, branch)
        assert estimate == pytest.approx(LOOP_BRANCH_PROB)

    def test_not_applicable_outside_loop(self):
        context, branches = context_and_branches(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        (label, branch), = branches.items()
        assert loop_branch_heuristic(context, label, branch) is None


class TestOpcodeHeuristic:
    def test_lt_zero_predicted_false(self):
        context, branches = context_and_branches(
            "func main(n) { if (n < 0) { n = 1; } return n; }"
        )
        (label, branch), = branches.items()
        assert opcode_heuristic(context, label, branch) == pytest.approx(
            1.0 - OPCODE_PROB
        )

    def test_gt_zero_predicted_true(self):
        context, branches = context_and_branches(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        (label, branch), = branches.items()
        assert opcode_heuristic(context, label, branch) == pytest.approx(OPCODE_PROB)

    def test_eq_constant_predicted_false(self):
        context, branches = context_and_branches(
            "func main(n) { if (n == 42) { n = 1; } return n; }"
        )
        (label, branch), = branches.items()
        assert opcode_heuristic(context, label, branch) == pytest.approx(
            1.0 - OPCODE_PROB
        )

    def test_plain_lt_not_applicable(self):
        context, branches = context_and_branches(
            "func main(a, b) { if (a < b) { a = 1; } return a; }"
        )
        (label, branch), = branches.items()
        assert opcode_heuristic(context, label, branch) is None


class TestContentHeuristics:
    def test_return_heuristic_fires(self):
        context, branches = context_and_branches(
            """
            func main(n) {
              if (n > 1000) { return 0; }
              var t = 0;
              for (i = 0; i < n; i = i + 1) { t = t + 1; }
              return t;
            }
            """
        )
        label, branch = next(
            (lbl, br)
            for lbl, br in branches.items()
            if return_heuristic(context, lbl, br) is not None
        )
        estimate = return_heuristic(context, label, branch)
        # Only the early-exit arm returns immediately; predicted not taken.
        assert estimate == pytest.approx(1.0 - RETURN_PROB)

    def test_return_heuristic_silent_when_both_arms_return(self):
        context, branches = context_and_branches(
            """
            func main(n) {
              if (n > 1000) { return 0; }
              return n;
            }
            """
        )
        (label, branch), = branches.items()
        assert return_heuristic(context, label, branch) is None

    def test_store_heuristic_fires(self):
        context, branches = context_and_branches(
            """
            func main(n) {
              array a[4];
              if (n > 0) { a[0] = 1; }
              return n;
            }
            """
        )
        (label, branch), = branches.items()
        assert store_heuristic(context, label, branch) is not None

    def test_call_heuristic_fires(self):
        context, branches = context_and_branches(
            """
            func log() { return 0; }
            func main(n) {
              if (n > 0) { var x = log(); }
              return n;
            }
            """
        )
        # main's only branch.
        (label, branch), = branches.items()
        assert call_heuristic(context, label, branch) is not None

    def test_pointer_heuristic_needs_memory_operand(self):
        context, branches = context_and_branches(
            "func main(a, b) { if (a == b) { return 1; } return 0; }"
        )
        (label, branch), = branches.items()
        assert pointer_heuristic(context, label, branch) is None

    def test_pointer_heuristic_on_loaded_values(self):
        context, branches = context_and_branches(
            """
            func main(n) {
              array a[4];
              var x = a[0];
              if (x == n) { return 1; }
              return 0;
            }
            """
        )
        (label, branch), = branches.items()
        estimate = pointer_heuristic(context, label, branch)
        assert estimate is not None
        assert estimate < 0.5  # eq predicted false


class TestCombination:
    def test_probabilities_in_unit_interval(self):
        predictor = BallLarusPredictor()
        function, _ = prepare_single(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < n; i = i + 1) {
                if (i % 3 == 0) { t = t + 1; }
              }
              return t;
            }
            """
        )
        for probability in predictor.predict_function(function).values():
            assert 0.0 <= probability <= 1.0

    def test_priority_mode_first_heuristic_wins(self):
        source = (
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        function, _ = prepare_single(source)
        priority = BallLarusPredictor(combination="priority").predict_function(function)
        (probability,) = priority.values()
        assert probability == pytest.approx(LOOP_BRANCH_PROB)

    def test_dempster_shafer_strengthens_agreeing_evidence(self):
        source = (
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        function, _ = prepare_single(source)
        combined = BallLarusPredictor().predict_function(function)
        (probability,) = combined.values()
        # Loop-branch + loop-exit agree: combined above either alone.
        assert probability > LOOP_BRANCH_PROB

    def test_unknown_combination_rejected(self):
        with pytest.raises(ValueError):
            BallLarusPredictor(combination="voodoo")

    def test_no_applicable_heuristics_gives_half(self):
        function, _ = prepare_single(
            "func main(a, b) { if (a < b) { a = a + 1; } a = a * 2; return a + b; }"
        )
        predictor = BallLarusPredictor()
        probabilities = predictor.predict_function(function)
        # Whatever applies, result is a probability; if none applied it is 0.5.
        for probability in probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_applicable_heuristics_listing(self):
        function, _ = prepare_single(
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        context = FunctionContext(function)
        predictor = BallLarusPredictor()
        (label, branch), = dict(context.branches()).items()
        names = [name for name, _ in predictor.applicable_heuristics(context, label, branch)]
        assert "loop-branch" in names
