"""Work-counter plumbing tests."""

from repro.core import counters as counters_mod
from repro.core.range_arith import evaluate_binop
from repro.core.rangeset import RangeSet


class TestCounters:
    def test_use_scopes_tallies(self):
        mine = counters_mod.Counters()
        with counters_mod.use(mine):
            evaluate_binop("add", RangeSet.constant(1), RangeSet.constant(2))
        assert mine.sub_operations == 1

    def test_nested_use_restores_previous(self):
        outer = counters_mod.Counters()
        inner = counters_mod.Counters()
        with counters_mod.use(outer):
            with counters_mod.use(inner):
                evaluate_binop("add", RangeSet.constant(1), RangeSet.constant(2))
            evaluate_binop("add", RangeSet.constant(1), RangeSet.constant(2))
        assert inner.sub_operations == 1
        assert outer.sub_operations == 1

    def test_cross_product_counts_pairs(self):
        mine = counters_mod.Counters()
        two = RangeSet.boolean(0.5)  # two ranges
        with counters_mod.use(mine):
            evaluate_binop("add", two, two, max_ranges=8)
        assert mine.sub_operations == 4  # 2 x 2 pairwise operations

    def test_merge(self):
        a = counters_mod.Counters()
        b = counters_mod.Counters()
        a.expr_evaluations = 3
        b.expr_evaluations = 4
        b.sub_operations = 7
        a.merge(b)
        assert a.expr_evaluations == 7
        assert a.sub_operations == 7

    def test_as_dict_round_trip(self):
        counters = counters_mod.Counters()
        counters.flow_edges_processed = 5
        data = counters.as_dict()
        assert data["flow_edges_processed"] == 5
        assert set(data) == set(counters_mod.Counters.__slots__)
