"""Evidence combination for heuristic predictions (Wu–Larus 1994).

The paper's strongest heuristic baseline combines the Ball–Larus
heuristics "as in [WuLarus94] to produce probabilities": each applicable
heuristic contributes its empirically measured hit rate as evidence, and
the pieces are fused with the Dempster–Shafer rule for binary events::

    combine(p1, p2) = p1*p2 / (p1*p2 + (1-p1)*(1-p2))

The neutral element is 0.5; combining complementary evidence cancels.
"""

from __future__ import annotations

from typing import Iterable, List


def _combine_pair(combined: float, p: float) -> float:
    p = min(1.0 - 1e-9, max(1e-9, p))
    numerator = combined * p
    denominator = numerator + (1.0 - combined) * (1.0 - p)
    return numerator / denominator


def dempster_shafer(probabilities: Iterable[float], neutral: float = 0.5) -> float:
    """Fuse independent probability estimates for one binary event."""
    combined = neutral
    for p in probabilities:
        combined = _combine_pair(combined, p)
    return combined


def dempster_shafer_steps(
    probabilities: Iterable[float], neutral: float = 0.5
) -> List[float]:
    """The running combination after each piece of evidence.

    Used by the observability layer's explain mode to show the
    Dempster-Shafer walkthrough heuristic by heuristic; the last element
    (or ``neutral`` for no evidence) equals :func:`dempster_shafer`.
    """
    combined = neutral
    steps: List[float] = []
    for p in probabilities:
        combined = _combine_pair(combined, p)
        steps.append(combined)
    return steps
