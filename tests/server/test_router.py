"""The consistent-hash ring: determinism, balance, minimal movement."""

import pytest

from repro.server.router import DEFAULT_VNODES, HashRing, _position


def keys(n, prefix="key"):
    return [f"{prefix}:{index}" for index in range(n)]


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashRing(0)

    def test_rejects_zero_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_point_count(self):
        ring = HashRing(3, vnodes=16)
        assert len(ring._positions) == 3 * 16

    def test_default_vnodes(self):
        assert HashRing(2).vnodes == DEFAULT_VNODES


class TestRouting:
    def test_route_in_range(self):
        ring = HashRing(4)
        for key in keys(200):
            assert 0 <= ring.route(key) < 4

    def test_deterministic_across_instances(self):
        # Two independently built rings (different processes in real
        # life) must agree on every route: the front end and any
        # external balancer compute identical placements.
        first, second = HashRing(5), HashRing(5)
        for key in keys(200):
            assert first.route(key) == second.route(key)

    def test_same_key_same_shard(self):
        ring = HashRing(8)
        for key in keys(50):
            assert ring.route(key) == ring.route(key)

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert {ring.route(key) for key in keys(100)} == {0}

    def test_not_hash_randomised(self):
        # Positions come from SHA-256, never Python's randomised
        # hash(); spot-check one against the hashlib ground truth.
        import hashlib

        label = "shard:0:vnode:0"
        expected = int.from_bytes(
            hashlib.sha256(label.encode()).digest()[:8], "big"
        )
        assert _position(label) == expected


class TestBalance:
    def test_load_spread_is_reasonable(self):
        # With 64 vnodes/shard over uniformly random keys no shard
        # should see more than ~2x its fair share (in practice the skew
        # is far smaller; 2x is a regression tripwire, not a target).
        shards = 4
        ring = HashRing(shards)
        counts = ring.distribution(keys(4000))
        fair = 4000 / shards
        assert set(counts) == set(range(shards))
        assert sum(counts.values()) == 4000
        for shard, count in counts.items():
            assert count < 2 * fair, (shard, counts)
            assert count > fair / 3, (shard, counts)


class TestMinimalMovement:
    def test_adding_a_shard_moves_a_minority(self):
        # The consistent-hash property: growing 4 -> 5 shards should
        # re-route roughly 1/5 of the keys, not reshuffle everything
        # the way `hash(key) % shards` would.
        sample = keys(2000)
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            1 for key in sample if before.route(key) != after.route(key)
        )
        assert moved < len(sample) * 0.45, moved  # modulo would move ~80%
        assert moved > 0  # the new shard must take *something*

    def test_survivor_routes_are_stable(self):
        # Keys that do not move to the new shard stay exactly where
        # they were -- their shard's caches remain warm.
        before = HashRing(3)
        after = HashRing(4)
        for key in keys(500):
            if after.route(key) != 3:
                assert after.route(key) == before.route(key)
