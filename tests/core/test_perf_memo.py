"""Memoization invariants: counter replay and the disable switch.

The caches may change wall time only.  A memo hit must replay the
exact ``sub_operations`` tally of the evaluation it short-circuits, and
``VRPConfig(perf=False)`` must bypass the layer entirely, giving the
same predictions *and* the same work counters either way.
"""

import pytest

from repro.core import counters, perf
from repro.core.config import VRPConfig
from repro.core.perf import memo
from repro.core.perf.context import activate
from repro.core.perf.memo import DEFAULT_MEMO_SIZE
from repro.core.perf.interning import DEFAULT_INTERN_SIZE
from repro.core.predictor import VRPPredictor
from repro.core.rangeset import RangeSet
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.reset()
    perf.configure(memo_size=DEFAULT_MEMO_SIZE, intern_size=DEFAULT_INTERN_SIZE)
    yield
    perf.reset()
    perf.configure(memo_size=DEFAULT_MEMO_SIZE, intern_size=DEFAULT_INTERN_SIZE)


def interval(lo, hi):
    from repro.core.bounds import Bound
    from repro.core.ranges import StridedRange

    return RangeSet.from_ranges([StridedRange(1.0, Bound(lo), Bound(hi), 1)])


class TestCounterReplay:
    def test_binop_hit_replays_sub_operations(self):
        a, b = interval(0, 9), interval(5, 14)
        with activate(True):
            tally = counters.Counters()
            with counters.use(tally):
                first = memo.evaluate_binop("add", a, b, 4)
            cost = tally.sub_operations
            assert cost > 0

            replay = counters.Counters()
            with counters.use(replay):
                second = memo.evaluate_binop("add", a, b, 4)
            assert second is first  # served from cache (interned object)
            assert replay.sub_operations == cost

    def test_compare_hit_replays_sub_operations(self):
        a, b = interval(0, 9), interval(5, 14)
        with activate(True):
            tally = counters.Counters()
            with counters.use(tally):
                first = memo.compare_sets("lt", a, b)
            cost = tally.sub_operations

            replay = counters.Counters()
            with counters.use(replay):
                second = memo.compare_sets("lt", a, b)
            assert second.estimate() == first.estimate()
            assert replay.sub_operations == cost

    def test_compare_with_symbol_callback_is_never_cached(self):
        a, b = interval(0, 9), interval(5, 14)
        calls = []

        def symbol_range(name):
            calls.append(name)
            return None

        with activate(True):
            memo.compare_sets("lt", a, b, a_name="x", symbol_range=symbol_range)
            before = len(memo._COMPARE)
            memo.compare_sets("lt", a, b, a_name="x", symbol_range=symbol_range)
            assert len(memo._COMPARE) == before  # nothing was stored

    def test_inactive_context_bypasses_caches(self):
        a, b = interval(0, 9), interval(5, 14)
        with activate(False):
            tally = counters.Counters()
            with counters.use(tally):
                memo.evaluate_binop("add", a, b, 4)
                memo.evaluate_binop("add", a, b, 4)
        assert len(memo._BINOP) == 0


class TestDisableSwitch:
    @pytest.mark.parametrize("workload_name", ["mandel", "isort"])
    def test_predictions_and_counters_match_without_layer(self, workload_name):
        workload = get_workload(workload_name)
        module = compile_source(workload.source, module_name=workload.name)
        infos = prepare_module(module)
        on = VRPPredictor(config=VRPConfig(perf=True)).predict_module(
            module, infos
        )
        off = VRPPredictor(config=VRPConfig(perf=False)).predict_module(
            module, infos
        )
        assert on.all_branches() == off.all_branches()
        assert on.counters.as_dict() == off.counters.as_dict()

    def test_config_default_tracks_global_switch(self):
        from repro.core.perf.context import globally_enabled

        assert VRPConfig().perf == globally_enabled()
        assert VRPConfig(perf=False).perf is False
