"""Constant and copy folding from VRP results (the subsumption claims).

Paper §6: a final range ``1[7:7:0]`` makes the variable a compile-time
constant; a final range ``1[y:y:0]`` makes it a copy of ``y``.  This
module turns a :class:`FunctionPrediction` into the classic rewrites --
and doubles as the executable proof that VRP subsumes constant and copy
propagation (tests cross-check against SCCP and the copy-chain walker).
"""

from __future__ import annotations

from typing import Dict

from repro.core.propagation import FunctionPrediction
from repro.ir.function import Function
from repro.ir.instructions import Copy, Phi, Pi
from repro.ir.values import Constant, Temp
from repro.opt._verify import verify_after


def constants_from_prediction(prediction: FunctionPrediction) -> Dict[str, int]:
    """SSA names VRP proves constant, with their values."""
    out: Dict[str, int] = {}
    for name, rangeset in prediction.values.items():
        value = rangeset.constant_value()
        if value is not None and value == int(value):
            out[name] = int(value)
    return out


def copies_from_prediction(prediction: FunctionPrediction) -> Dict[str, str]:
    """SSA names VRP proves to be exact copies of another variable."""
    out: Dict[str, str] = {}
    for name, rangeset in prediction.values.items():
        source = rangeset.copy_symbol()
        if source is not None and source != name:
            out[name] = source
    return out


def fold_constants(function: Function, prediction: FunctionPrediction) -> int:
    """Replace uses of proven-constant temps with immediates.

    Phi incomings are folded too; definitions are left in place (dead
    code elimination is a separate concern).  Returns replacements made.
    """
    constants = constants_from_prediction(prediction)
    replaced = 0
    for block in function.blocks.values():
        for instr in block.instructions:
            if isinstance(instr, Pi):
                continue  # assertions must keep their variable operand
            for operand in list(instr.operands()):
                if isinstance(operand, Temp) and operand.name in constants:
                    instr.replace_operand(operand, Constant(constants[operand.name]))
                    replaced += 1
    replaced += _demote_constant_pis(function, constants)
    if replaced:
        verify_after(function, "fold_constants")
    return replaced


def _demote_constant_pis(function: Function, constants: Dict[str, int]) -> int:
    """Turn pis over proven-constant variables into plain copies.

    Once a variable is a compile-time constant its assertions refine a
    singleton range -- no information -- while the fold above may have
    replaced the variable in the controlling comparison, leaving the pi
    asserting a name the branch no longer mentions.  Demoted copies are
    moved behind the surviving pis so the ``[phi*][pi*]`` block prefix
    stays intact.
    """
    demoted_total = 0
    for block in function.blocks.values():
        instrs = block.instructions
        k = 0
        while k < len(instrs) and isinstance(instrs[k], Phi):
            k += 1
        start = k
        while k < len(instrs) and isinstance(instrs[k], Pi):
            k += 1
        if start == k:
            continue
        kept, demoted = [], []
        for pi in instrs[start:k]:
            if isinstance(pi.src, Temp) and pi.src.name in constants:
                copy = Copy(pi.dest, pi.src)
                copy.block = block
                copy.loc = pi.loc
                demoted.append(copy)
            else:
                kept.append(pi)
        if demoted:
            instrs[start:k] = kept + demoted
            demoted_total += len(demoted)
    return demoted_total


def fold_copies(function: Function, prediction: FunctionPrediction) -> int:
    """Replace uses of proven copies with their sources.

    Only rewrites where the source's definition still dominates -- which
    is guaranteed in SSA when the copy fact came from a Copy/Pi chain,
    the only way VRP produces a pure ``1[y:y:0]`` range.
    """
    copies = copies_from_prediction(prediction)
    # Resolve chains (x -> y -> z) to the final source.
    resolved: Dict[str, str] = {}

    def resolve(name: str) -> str:
        seen = set()
        current = name
        while current in copies and current not in seen:
            seen.add(current)
            current = copies[current]
        return current

    for name in copies:
        resolved[name] = resolve(name)
    replaced = 0
    for block in function.blocks.values():
        for instr in block.instructions:
            if isinstance(instr, (Pi, Phi)):
                continue  # keep assertion/merge structure intact
            for operand in list(instr.operands()):
                if isinstance(operand, Temp) and operand.name in resolved:
                    root = resolved[operand.name]
                    if root != operand.name:
                        instr.replace_operand(operand, Temp(root))
                        replaced += 1
    if replaced:
        verify_after(function, "fold_copies")
    return replaced
