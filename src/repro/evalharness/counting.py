"""Work-count measurements for the Figure 5/6 linearity claims.

Figure 5 plots expression evaluations against program size; Figure 6
plots evaluation sub-operations.  Both should grow (near-)linearly.  We
measure over the real workload suite and over a scalable synthetic
program family (so the x-axis spans a wide, controlled size range, like
the paper's 50-program collection).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import VRPConfig, VRPPredictor
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.workloads import Workload, all_workloads


def measure_source(
    source: str, config: Optional[VRPConfig] = None
) -> Tuple[int, int, int]:
    """(instructions, expression evaluations, sub-operations) for a program."""
    module = compile_source(source)
    ssa_infos = prepare_module(module)
    predictor = VRPPredictor(config=config)
    prediction = predictor.predict_module(module, ssa_infos)
    return (
        module.instruction_count(),
        prediction.counters.expr_evaluations,
        prediction.counters.sub_operations,
    )


def measure_workloads(
    config: Optional[VRPConfig] = None,
) -> List[Tuple[str, int, int, int]]:
    """Work counts for the full 20-program suite."""
    out: List[Tuple[str, int, int, int]] = []
    for workload in all_workloads():
        instructions, evaluations, subops = measure_source(workload.source, config)
        out.append((workload.name, instructions, evaluations, subops))
    return out


def synthetic_program(units: int) -> str:
    """A program family whose size scales linearly with ``units``.

    Each unit is a block with a counted loop, a data-dependent branch
    and an accumulation -- a miniature of real workload structure, so
    the work profile scales the way real programs do.
    """
    parts: List[str] = ["func main(n) {", "  var acc = 0;"]
    for unit in range(units):
        limit = 10 + (unit % 7)
        threshold = 3 + (unit % 5)
        parts.append(f"  var v{unit} = 0;")
        parts.append(f"  for (i{unit} = 0; i{unit} < {limit}; i{unit} = i{unit} + 1) {{")
        parts.append(f"    if (i{unit} > {threshold}) {{ v{unit} = v{unit} + 2; }}")
        parts.append(f"    else {{ v{unit} = v{unit} + 1; }}")
        parts.append(f"    if (v{unit} % 3 == 0) {{ acc = acc + 1; }}")
        parts.append("  }")
        parts.append(f"  if (v{unit} > {limit}) {{ acc = acc + v{unit}; }}")
    parts.append("  return acc;")
    parts.append("}")
    return "\n".join(parts)


def measure_scaling(
    unit_counts: Optional[List[int]] = None, config: Optional[VRPConfig] = None
) -> List[Tuple[int, int, int]]:
    """(instructions, evaluations, sub-operations) over the synthetic family."""
    if unit_counts is None:
        unit_counts = [2, 4, 8, 16, 32, 64]
    out: List[Tuple[int, int, int]] = []
    for units in unit_counts:
        instructions, evaluations, subops = measure_source(
            synthetic_program(units), config
        )
        out.append((instructions, evaluations, subops))
    return out


def linearity_ratio(points: List[Tuple[int, int]]) -> float:
    """How much the per-instruction work grows from smallest to largest.

    A perfectly linear relationship gives 1.0; superlinear behaviour
    gives ratios substantially above 1.  (Robust to intercepts by using
    the two extreme points.)
    """
    if len(points) < 2:
        return 1.0
    ordered = sorted(points)
    x0, y0 = ordered[0]
    x1, y1 = ordered[-1]
    if x0 == 0 or y0 == 0 or x1 == x0:
        return 1.0
    per_unit_small = y0 / x0
    per_unit_large = y1 / x1
    if per_unit_small == 0:
        return 1.0
    return per_unit_large / per_unit_small
