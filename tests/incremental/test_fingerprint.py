"""Fingerprint properties: what must and must not move the hash.

The semantic fingerprint addresses the store, so it must be invariant
under everything that cannot change analysis results (comments,
whitespace, line shifts, renaming locals) and must change on every
semantic edit (operator, constant, branch arm, callee).  The exact
fingerprint additionally pins concrete names, guarding replayability of
rendered output.
"""

import re

import repro.incremental.fingerprint as fp_mod
from repro.core.config import VRPConfig
from repro.incremental.fingerprint import (
    canonical_function_text,
    exact_fingerprint,
    fingerprint_salt,
    function_fingerprint,
    module_fingerprints,
)

from tests.incremental.helpers import build

BASE = """
func main(n) {
  var total = 0;
  if (n > 5) { total = n + 1; } else { total = n - 1; }
  return total;
}
"""


def fingerprint_of(source: str, name: str = "main", **kwargs) -> str:
    module, _ = build(source)
    return function_fingerprint(module.functions[name], **kwargs)


def exact_of(source: str, name: str = "main", **kwargs) -> str:
    module, _ = build(source)
    return exact_fingerprint(module.functions[name], **kwargs)


class TestStability:
    def test_comments_and_whitespace_are_invisible(self):
        noisy = """
        // a line comment before everything
        func main(n) {
          /* block
             comment */
          var total = 0;   // trailing
          if (n > 5) { total = n + 1; }
          else { total = n - 1; }
          return total;
        }
        """
        assert fingerprint_of(BASE) == fingerprint_of(noisy)
        assert exact_of(BASE) == exact_of(noisy)

    def test_line_shift_is_invisible(self):
        # Source locations reach the IR (diagnostics use them) but are
        # excluded from both canonical forms.
        shifted = "\n\n\n\n\n" + BASE
        assert fingerprint_of(BASE) == fingerprint_of(shifted)
        assert exact_of(BASE) == exact_of(shifted)

    def test_renaming_locals_keeps_the_semantic_fingerprint(self):
        # SSA construction places phi nodes in sorted variable order, so
        # rename-stability holds for renames that keep that order (here
        # n < total and m < totals).  A rename that inverts it genuinely
        # reorders instructions and is a different exact form anyway.
        renamed = re.sub(r"\btotal\b", "totals", BASE)
        renamed = re.sub(r"\bn\b", "m", renamed)
        assert fingerprint_of(BASE) == fingerprint_of(renamed)
        assert exact_of(BASE) != exact_of(renamed)

    def test_renaming_locals_changes_the_exact_fingerprint(self):
        renamed = BASE.replace("total", "accum")
        assert exact_of(BASE) != exact_of(renamed)

    def test_canonical_text_uses_first_occurrence_names(self):
        module, _ = build(BASE)
        text = canonical_function_text(module.functions["main"])
        assert "total" not in text
        assert text.startswith("func main(v0)")


class TestSensitivity:
    def test_operator_flip_changes_it(self):
        assert fingerprint_of(BASE) != fingerprint_of(
            BASE.replace("n + 1", "n * 1")
        )

    def test_constant_flip_changes_it(self):
        assert fingerprint_of(BASE) != fingerprint_of(
            BASE.replace("n > 5", "n > 6")
        )

    def test_branch_arm_flip_changes_it(self):
        swapped = BASE.replace(
            "{ total = n + 1; } else { total = n - 1; }",
            "{ total = n - 1; } else { total = n + 1; }",
        )
        assert fingerprint_of(BASE) != fingerprint_of(swapped)

    def test_comparison_direction_changes_it(self):
        assert fingerprint_of(BASE) != fingerprint_of(
            BASE.replace("n > 5", "n < 5")
        )

    def test_callee_flip_changes_it(self):
        calls_f = """
        func f(x) { return x + 1; }
        func g(x) { return x + 1; }
        func main(n) { return f(n); }
        """
        calls_g = calls_f.replace("return f(n)", "return g(n)")
        # f and g are bodies-identical, so only the callee name differs.
        assert fingerprint_of(calls_f) != fingerprint_of(calls_g)

    def test_function_name_is_part_of_the_identity(self):
        # The function's own name is global identity (its callers name
        # it), so bodies-identical functions still get distinct
        # fingerprints -- both semantic and exact.
        module, _ = build(
            """
            func f(x) { var a = x + 2; return a; }
            func g(y) { var b = y + 2; return b; }
            func main(n) { return f(n) + g(n); }
            """
        )
        fps = module_fingerprints(module)
        assert fps["f"]["semantic"] != fps["g"]["semantic"]
        assert fps["f"]["exact"] != fps["g"]["exact"]
        # Minus the leading name line, the canonical bodies coincide.
        f_text = canonical_function_text(module.functions["f"])
        g_text = canonical_function_text(module.functions["g"])
        assert f_text.split("\n", 1)[1] == g_text.split("\n", 1)[1]


class TestSalt:
    def test_salt_separates_equal_texts(self):
        assert fingerprint_of(BASE, salt="a") != fingerprint_of(BASE, salt="b")

    def test_context_depth_changes_the_salt(self):
        assert fingerprint_salt(VRPConfig()) != fingerprint_salt(
            VRPConfig(context_depth=1)
        )

    def test_config_changes_the_salt(self):
        assert fingerprint_salt(VRPConfig()) != fingerprint_salt(
            VRPConfig(max_ranges=7)
        )

    def test_engine_version_changes_the_salt(self, monkeypatch):
        before = fingerprint_salt()
        monkeypatch.setattr(
            fp_mod, "engine_salt", lambda: "vrp-engine vNEXT"
        )
        assert fingerprint_salt() != before
