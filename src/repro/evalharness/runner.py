"""Evaluation runner: compile, profile, predict, score.

Drives the full paper methodology for one workload or a whole suite:

1. compile the program and prepare SSA form;
2. run the *train* inputs to collect the feedback profile;
3. run the *ref* inputs to obtain ground truth;
4. produce predictions from every predictor under study;
5. score each against the ground truth (error records / CDFs).

The six predictors of Figures 7-8 are built by
:func:`standard_predictors`: execution profiling, full VRP, VRP with
numeric ranges only, Ball–Larus (Wu–Larus combined), the 90/50 rule,
and random prediction.

Suite evaluation can fan out over a process pool (``jobs > 1``).  Every
step is deterministic per workload -- VRP resets its perf caches per
run, the random reference line is seeded per branch -- so the results
(and any rendered figure or metrics built from them) are byte-identical
for every worker count; the pool only changes wall time.  The parallel
path requires the picklable :func:`standard_predictors`; custom
predictor callables (often closures) must use ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import VRPConfig, VRPPredictor
from repro.evalharness.accuracy import (
    BranchError,
    DEFAULT_THRESHOLDS,
    branch_errors,
    error_cdf,
)
from repro.heuristics import BallLarusPredictor, RandomPredictor, Rule9050Predictor
from repro.ir import prepare_module
from repro.ir.function import Module
from repro.ir.ssa import SSAInfo
from repro.lang import compile_source
from repro.profiling import BranchProfile, ProfilePredictor, run_module
from repro.workloads import Workload

# A prediction source: (prepared workload) -> {(function, label): P(true)}.
PredictionFn = Callable[["PreparedWorkload"], Dict[Tuple[str, str], float]]


@dataclass
class PreparedWorkload:
    """A workload compiled once and shared by profiling and predictors."""

    workload: Workload
    module: Module
    ssa_infos: Dict[str, SSAInfo]
    train_profile: BranchProfile
    truth_profile: BranchProfile


def prepare_workload(workload: Workload) -> PreparedWorkload:
    """Compile, canonicalise, and run both input sets."""
    module = compile_source(workload.source, module_name=workload.name)
    ssa_infos = prepare_module(module)
    train = run_module(
        module,
        args=workload.train_args,
        input_values=workload.train_inputs,
        max_steps=workload.max_steps,
    )
    ref = run_module(
        module,
        args=workload.ref_args,
        input_values=workload.ref_inputs,
        max_steps=workload.max_steps,
    )
    return PreparedWorkload(
        workload=workload,
        module=module,
        ssa_infos=ssa_infos,
        train_profile=BranchProfile.from_runs([train]),
        truth_profile=BranchProfile.from_runs([ref]),
    )


def _module_predictions(
    prepared: PreparedWorkload, predictor
) -> Dict[Tuple[str, str], float]:
    """Run a function-at-a-time predictor over the whole module."""
    out: Dict[Tuple[str, str], float] = {}
    for name, function in prepared.module.functions.items():
        for label, probability in predictor.predict_function(function).items():
            out[(name, label)] = probability
    return out


def profile_predictions(prepared: PreparedWorkload) -> Dict[Tuple[str, str], float]:
    predictor = ProfilePredictor(prepared.train_profile)
    return _module_predictions(prepared, predictor)


def perfect_predictions(prepared: PreparedWorkload) -> Dict[Tuple[str, str], float]:
    """The paper's "perfect static predictor" reference line.

    Marks each branch with the probability observed on the *ref* inputs
    themselves -- by construction 100% of branches land within ±0% (a
    horizontal line across the top of the figures).  Not part of the six
    standard lines; provided for the upper-bound comparison the paper
    describes in its Figures 7-8 discussion.
    """
    predictor = ProfilePredictor(prepared.truth_profile)
    return _module_predictions(prepared, predictor)


def vrp_predictions(
    prepared: PreparedWorkload, config: Optional[VRPConfig] = None
) -> Dict[Tuple[str, str], float]:
    predictor = VRPPredictor(config=config)
    prediction = predictor.predict_module(prepared.module, prepared.ssa_infos)
    return prediction.all_branches()


def workload_metrics(prepared: PreparedWorkload, config: Optional[VRPConfig] = None):
    """A :class:`~repro.observability.MetricsReport` for one VRP run.

    Re-runs the VRP predictor over the prepared workload under a
    recording tracer, so the report carries phase timings, counters,
    and per-branch provenance -- the machine-readable counterpart of
    the rendered figure tables.
    """
    from repro.core import perf
    from repro.observability import Tracer, build_metrics_report, use

    tracer = Tracer()
    with use(tracer):
        predictor = VRPPredictor(config=config)
        prediction = predictor.predict_module(prepared.module, prepared.ssa_infos)
    perf_stats = perf.snapshot() if predictor.config.perf else None
    return build_metrics_report(
        prediction,
        tracer,
        program=prepared.workload.name,
        perf_stats=perf_stats,
    )


def suite_metrics(
    prepared_workloads: List[PreparedWorkload],
    config: Optional[VRPConfig] = None,
) -> List:
    """Metrics reports for every workload of a prepared suite."""
    return [workload_metrics(prepared, config) for prepared in prepared_workloads]


def standard_predictors(context_depth: int = 0) -> Dict[str, PredictionFn]:
    """The six prediction lines of the paper's Figures 7 and 8.

    ``context_depth`` raises the k-limit of the interprocedural VRP
    lines (``vrp`` and ``vrp-numeric``); the default 0 reproduces the
    context-insensitive paper configuration byte-for-byte.
    """
    vrp_config = VRPConfig(context_depth=context_depth)
    numeric_config = VRPConfig(symbolic=False, context_depth=context_depth)
    return {
        "profile": profile_predictions,
        "vrp": lambda prepared: vrp_predictions(prepared, vrp_config),
        "vrp-numeric": lambda prepared: vrp_predictions(prepared, numeric_config),
        "ball-larus": lambda prepared: _module_predictions(
            prepared, BallLarusPredictor()
        ),
        "rule-90-50": lambda prepared: _module_predictions(
            prepared, Rule9050Predictor()
        ),
        "random": lambda prepared: _module_predictions(prepared, RandomPredictor()),
    }


@dataclass
class WorkloadEvaluation:
    """Per-predictor error records for one workload."""

    workload: Workload
    records: Dict[str, List[BranchError]] = field(default_factory=dict)

    def cdf(self, predictor: str, weighted: bool = False) -> List[float]:
        return error_cdf(self.records[predictor], weighted=weighted)


def evaluate_workload(
    workload: Workload,
    predictors: Optional[Dict[str, PredictionFn]] = None,
    prepared: Optional[PreparedWorkload] = None,
    context_depth: int = 0,
) -> WorkloadEvaluation:
    """Score all predictors on one workload."""
    if prepared is None:
        prepared = prepare_workload(workload)
    if predictors is None:
        predictors = standard_predictors(context_depth)
    evaluation = WorkloadEvaluation(workload=workload)
    for name, predict in predictors.items():
        predictions = predict(prepared)
        evaluation.records[name] = branch_errors(predictions, prepared.truth_profile)
    return evaluation


@dataclass
class SuiteEvaluation:
    """Benchmark-equal-weight aggregation over one suite (paper style)."""

    suite_name: str
    evaluations: List[WorkloadEvaluation]
    thresholds: Tuple[int, ...] = DEFAULT_THRESHOLDS

    def aggregate_cdf(self, predictor: str, weighted: bool = False) -> List[float]:
        from repro.evalharness.accuracy import average_cdfs

        return average_cdfs(
            [e.cdf(predictor, weighted=weighted) for e in self.evaluations]
        )

    def predictors(self) -> List[str]:
        names: List[str] = []
        for evaluation in self.evaluations:
            for name in evaluation.records:
                if name not in names:
                    names.append(name)
        return names


def _suite_worker(item: Tuple[Workload, bool, int]):
    """Evaluate one workload with the standard predictors.

    Module-level (hence picklable) so a process pool can run it; the
    sequential path calls the same function so ``jobs=1`` and
    ``jobs=N`` perform the identical computation per workload.
    """
    workload, with_metrics, context_depth = item
    prepared = prepare_workload(workload)
    evaluation = evaluate_workload(
        workload, prepared=prepared, context_depth=context_depth
    )
    report = (
        workload_metrics(
            prepared, VRPConfig(context_depth=context_depth)
        ).to_dict()
        if with_metrics
        else None
    )
    return evaluation, report


def run_suite(
    workloads: List[Workload],
    suite_name: str,
    jobs: int = 1,
    with_metrics: bool = False,
    context_depth: int = 0,
) -> Tuple[SuiteEvaluation, Optional[List[dict]]]:
    """Evaluate a suite with the standard predictors, optionally in parallel.

    Results are ordered like ``workloads`` regardless of ``jobs``; with
    ``with_metrics`` a per-workload metrics dict list is returned too.
    ``context_depth`` sets the k-limit of the VRP prediction lines.
    """
    items = [(workload, with_metrics, context_depth) for workload in workloads]
    if jobs <= 1 or len(items) <= 1:
        results = [_suite_worker(item) for item in items]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # map() yields in submission order: deterministic output.
            results = list(pool.map(_suite_worker, items))
    evaluations = [evaluation for evaluation, _ in results]
    reports = [report for _, report in results] if with_metrics else None
    suite_evaluation = SuiteEvaluation(
        suite_name=suite_name, evaluations=evaluations
    )
    return suite_evaluation, reports


def evaluate_suite(
    workloads: List[Workload],
    suite_name: str,
    predictors: Optional[Dict[str, PredictionFn]] = None,
    jobs: int = 1,
) -> SuiteEvaluation:
    """Score all predictors over a suite of workloads."""
    if predictors is not None:
        if jobs > 1:
            raise ValueError(
                "custom predictors cannot cross process boundaries; "
                "use jobs=1 or the standard predictors"
            )
        evaluations = [
            evaluate_workload(w, predictors=predictors) for w in workloads
        ]
        return SuiteEvaluation(suite_name=suite_name, evaluations=evaluations)
    suite_evaluation, _ = run_suite(workloads, suite_name, jobs=jobs)
    return suite_evaluation
