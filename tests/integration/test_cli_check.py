"""``repro check``: exit codes, output formats, metrics, sanitizer flag."""

import json

import pytest

from repro.cli import main
from repro.diagnostics import validate_sarif
from repro.observability import validate_report_dict

DEFECTIVE = """
func main() {
  var d = 0;
  var x = input() % 10;
  if (x < 20) {
    return 100 / d;
  }
  return 0;
}
"""

CLEAN = """
func main(n) {
  var t = 0;
  for (i = 0; i < 10; i = i + 1) { t = t + i; }
  return t;
}
"""


@pytest.fixture()
def defective_file(tmp_path):
    path = tmp_path / "defective.toy"
    path.write_text(DEFECTIVE)
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.toy"
    path.write_text(CLEAN)
    return str(path)


class TestExitCodes:
    def test_clean_program_exits_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_error_finding_fails(self, defective_file):
        assert main(["check", defective_file]) == 1

    def test_fail_on_never_passes(self, defective_file):
        assert main(["check", defective_file, "--fail-on", "never"]) == 0

    def test_fail_on_warning_catches_warnings(self, tmp_path):
        path = tmp_path / "warn.toy"
        # Only a dead branch: a warning, not an error.
        path.write_text(
            "func main() { var n = 3; if (n > 5) { return 1; } return 0; }"
        )
        assert main(["check", str(path)]) == 0
        assert main(["check", str(path), "--fail-on", "warning"]) == 1


class TestFormats:
    def test_text_format(self, defective_file, capsys):
        main(["check", defective_file])
        out = capsys.readouterr().out
        assert "[div-by-zero]" in out
        assert "error" in out
        assert "finding(s)" in out

    def test_json_format(self, defective_file, capsys):
        main(["check", defective_file, "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in data["findings"]} >= {"div-by-zero"}
        assert data["summary"]["error"] >= 1

    def test_sarif_format_validates(self, defective_file, capsys):
        main(["check", defective_file, "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert validate_sarif(log) == []
        assert log["version"] == "2.1.0"

    def test_output_file(self, defective_file, tmp_path, capsys):
        out_path = tmp_path / "report.sarif"
        main([
            "check", defective_file,
            "--format", "sarif",
            "--output", str(out_path),
        ])
        assert "written to" in capsys.readouterr().out
        assert validate_sarif(json.loads(out_path.read_text())) == []


class TestMetrics:
    def test_emit_metrics_carries_findings(self, defective_file, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        main([
            "check", defective_file,
            "--fail-on", "never",
            "--emit-metrics", str(metrics_path),
        ])
        data = json.loads(metrics_path.read_text())
        assert validate_report_dict(data) is None
        assert data["schema_version"] == 8
        rules = {entry["rule"] for entry in data["diagnostics"]}
        assert "div-by-zero" in rules

    def test_clean_program_has_empty_diagnostics(self, clean_file, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        main(["check", clean_file, "--emit-metrics", str(metrics_path)])
        data = json.loads(metrics_path.read_text())
        assert data["diagnostics"] == []


class TestSanitize:
    def test_check_accepts_sanitize_flag(self, defective_file):
        assert main(["check", defective_file, "--sanitize",
                     "--fail-on", "never"]) == 0

    def test_predict_accepts_sanitize_flag(self, clean_file):
        assert main(["predict", clean_file, "--sanitize"]) == 0
