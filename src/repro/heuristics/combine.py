"""Evidence combination for heuristic predictions (Wu–Larus 1994).

The paper's strongest heuristic baseline combines the Ball–Larus
heuristics "as in [WuLarus94] to produce probabilities": each applicable
heuristic contributes its empirically measured hit rate as evidence, and
the pieces are fused with the Dempster–Shafer rule for binary events::

    combine(p1, p2) = p1*p2 / (p1*p2 + (1-p1)*(1-p2))

The neutral element is 0.5; combining complementary evidence cancels.
"""

from __future__ import annotations

from typing import Iterable


def dempster_shafer(probabilities: Iterable[float], neutral: float = 0.5) -> float:
    """Fuse independent probability estimates for one binary event."""
    combined = neutral
    for p in probabilities:
        p = min(1.0 - 1e-9, max(1e-9, p))
        numerator = combined * p
        denominator = numerator + (1.0 - combined) * (1.0 - p)
        combined = numerator / denominator
    return combined
