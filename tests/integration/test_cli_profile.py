"""``repro profile``: the per-pass profiler command and its artifacts."""

import json

import pytest

from repro.cli import main
from repro.observability.chrometrace import validate_chrome_trace
from repro.observability.metrics import validate_report_dict

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 50; i = i + 1) {
    if (i > 40) { total = total + i; }
  }
  return total;
}
"""


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "p.toy"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestProfileCommand:
    def test_report_shows_spans_and_the_invariant(self, capsys, program):
        assert main(["profile", program]) == 0
        out = capsys.readouterr().out
        assert "wall:" in out
        assert "self-time sum:" in out
        assert "pass:predict" in out
        assert "pipeline:predict" in out
        assert "analysis:prediction" in out

    def test_hot_functions_listed(self, capsys, program):
        assert main(["profile", program, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "main" in out

    def test_collapsed_stacks_artifact(self, capsys, program, tmp_path):
        collapsed = tmp_path / "stacks.collapsed"
        assert main(["profile", program, "--collapsed", str(collapsed)]) == 0
        assert f"collapsed stacks written to {collapsed}" in capsys.readouterr().out
        lines = collapsed.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack.startswith("profile")
            assert int(weight) > 0

    def test_trace_out_is_a_valid_chrome_trace(self, capsys, program, tmp_path):
        trace = tmp_path / "profile-trace.json"
        assert main(["profile", program, "--trace-out", str(trace)]) == 0
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert "profile" in names
        assert "pipeline:predict" in names

    def test_emit_metrics_carries_profile_and_tracing(
        self, capsys, program, tmp_path
    ):
        metrics = tmp_path / "metrics.json"
        assert main(["profile", program, "--emit-metrics", str(metrics)]) == 0
        document = json.loads(metrics.read_text(encoding="utf-8"))
        assert validate_report_dict(document) is None
        assert document["schema_version"] == 8
        profile = document["profile"]
        assert profile["wall_seconds"] > 0
        assert any(
            span["name"] == "pass:predict" for span in profile["spans"]
        )

    def test_explicit_passes(self, capsys, program):
        assert main(["profile", program, "--passes", "predict"]) == 0
        out = capsys.readouterr().out
        assert "pass:predict" in out

    def test_broken_program_exits_with_error(self, capsys, tmp_path):
        path = tmp_path / "bad.toy"
        path.write_text("func main( { oops", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["profile", str(path)])
