"""The 90/50 rule (paper §1): backward branches are taken 90% of the
time, forward branches 50%.

A branch edge is "backward" when it is a DFS back edge (it re-enters a
loop).  The paper singles this rule out as "obviously far too crude to
base important decisions on"; it is the weakest baseline in Figures 7–8,
with the characteristic jump at the 50-point error mark caused by the
"50" half of the rule.
"""

from __future__ import annotations

from repro.heuristics.base import FunctionContext, Predictor
from repro.ir.instructions import Branch


class Rule9050Predictor(Predictor):
    """Backward taken with probability 0.9, forward split 50/50."""

    name = "rule-90-50"

    def __init__(self, backward_probability: float = 0.9):
        self.backward_probability = backward_probability

    def predict_branch(
        self, context: FunctionContext, label: str, branch: Branch
    ) -> float:
        true_back = _is_backward(context, label, branch.true_target)
        false_back = _is_backward(context, label, branch.false_target)
        if true_back and not false_back:
            return self.backward_probability
        if false_back and not true_back:
            return 1.0 - self.backward_probability
        return 0.5


def _is_backward(context: FunctionContext, label: str, target: str) -> bool:
    """True when the edge (possibly through forwarding blocks) re-enters
    a loop that contains the branch -- i.e. it is a backward jump in the
    machine-code sense the 90/50 rule talks about."""
    if context.cfg.is_back_edge(label, target):
        return True
    effective = context.effective_successor(target)
    if effective == target:
        return False
    loop = context.loops.innermost(label)
    return (
        loop is not None
        and context.loops.is_header(effective)
        and effective in loop.blocks
    )
