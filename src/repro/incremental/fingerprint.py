"""Canonical per-function IR normalization and fingerprinting.

Two SHA-256 fingerprints per function, both computed over a canonical
line-oriented serialization of the prepared (SSA) IR:

* the **semantic fingerprint** (:func:`function_fingerprint`) renames
  every function-local name -- SSA temps, parameters, arrays, block
  labels -- to its canonical index of first occurrence.  It is stable
  under comment/whitespace edits (source locations are excluded
  entirely) and under renaming locals -- up to SSA's deterministic
  phi-placement order, which sorts by variable name -- and changes on
  any semantic edit: flipping an operator, a constant, a branch arm,
  or a callee (callee and function names are global identity and stay
  verbatim).
* the **exact fingerprint** (:func:`exact_fingerprint`) keeps concrete
  names and labels.  Rendered output mentions SSA names and block
  labels, so a stored result may only be replayed when the exact form
  still matches; the semantic fingerprint decides *addressing* (which
  component a result belongs to), the exact fingerprint guards
  *replayability*.

Source locations appear in neither: predictions carry no line numbers
(diagnostics re-derive them from the live IR), so shifting a function
down a file must not invalidate anything.

Keys derived from these fingerprints are salted with
:func:`fingerprint_salt` -- the version-salted config fingerprint plus
``context_depth`` -- so an engine upgrade or a config change invalidates
the store instead of replaying stale summaries.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional

from repro.core.config import VRPConfig
from repro.core.perf.fingerprint import config_fingerprint, engine_salt
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.values import Constant, Temp, Undef, Value


def fingerprint_salt(config: Optional[VRPConfig] = None) -> str:
    """The key salt shared by every store address.

    ``context_depth`` is already part of the config fingerprint but is
    repeated explicitly: it changes the *shape* of stored payloads
    (context-refined seeds), not merely their values.
    """
    config = config or VRPConfig()
    return json.dumps(
        {
            "engine": engine_salt(),
            "config": config_fingerprint(config),
            "context_depth": int(config.context_depth),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


class _Namer:
    """Maps one namespace of names to canonical first-occurrence tokens."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.mapping: Dict[str, str] = {}

    def __call__(self, name: str) -> str:
        token = self.mapping.get(name)
        if token is None:
            token = f"{self.prefix}{len(self.mapping)}"
            self.mapping[name] = token
        return token


def _identity(name: str) -> str:
    return name


def canonical_function_text(function: Function, *, normalize_names: bool = True) -> str:
    """The canonical line-oriented serialization the fingerprints hash.

    With ``normalize_names`` (the semantic form) temps, params, arrays
    and labels become canonical indices; without it (the exact form)
    they stay verbatim.  Locations are excluded either way.
    """
    if normalize_names:
        temp: Callable[[str], str] = _Namer("v")
        label: Callable[[str], str] = _Namer("b")
        array: Callable[[str], str] = _Namer("a")
    else:
        temp = label = array = _identity

    def value(operand: Value) -> str:
        if isinstance(operand, Constant):
            return f"c:{operand.value!r}"
        if isinstance(operand, Temp):
            return f"t:{temp(operand.name)}"
        if isinstance(operand, Undef):
            return "undef"
        raise TypeError(f"unknown operand {operand!r}")

    lines: List[str] = [
        f"func {function.name}({','.join(temp(p) for p in function.params)})"
    ]
    for name, size in function.arrays.items():
        lines.append(f"array {array(name)} {size}")
    # Pre-assign label tokens in block order so forward jump targets get
    # the same token as the block header they name.
    for block_label in function.blocks:
        label(block_label)
    lines.append(f"entry {label(function.entry_label)}")
    for block_label, block in function.blocks.items():
        lines.append(f"block {label(block_label)}")
        for instr in block.instructions:
            lines.append(_instr_line(instr, value, temp, label, array))
    return "\n".join(lines)


def _instr_line(
    instr: Instruction,
    value: Callable[[Value], str],
    temp: Callable[[str], str],
    label: Callable[[str], str],
    array: Callable[[str], str],
) -> str:
    if isinstance(instr, BinOp):
        return f"bin {instr.op} {temp(instr.dest.name)} {value(instr.lhs)} {value(instr.rhs)}"
    if isinstance(instr, UnOp):
        return f"un {instr.op} {temp(instr.dest.name)} {value(instr.operand)}"
    if isinstance(instr, Cmp):
        return f"cmp {instr.op} {temp(instr.dest.name)} {value(instr.lhs)} {value(instr.rhs)}"
    if isinstance(instr, Copy):
        return f"copy {temp(instr.dest.name)} {value(instr.src)}"
    if isinstance(instr, Phi):
        incomings = ",".join(
            f"{label(pred)}:{value(operand)}" for pred, operand in instr.incomings
        )
        return f"phi {temp(instr.dest.name)} {incomings}"
    if isinstance(instr, Pi):
        parent = temp(instr.parent) if instr.parent is not None else "-"
        return (
            f"pi {temp(instr.dest.name)} {value(instr.src)} "
            f"{instr.op} {value(instr.bound)} {parent}"
        )
    if isinstance(instr, Load):
        return f"load {temp(instr.dest.name)} {array(instr.array)} {value(instr.index)}"
    if isinstance(instr, Store):
        return f"store {array(instr.array)} {value(instr.index)} {value(instr.value)}"
    if isinstance(instr, Call):
        dest = temp(instr.dest.name) if instr.dest is not None else "-"
        args = ",".join(value(arg) for arg in instr.args)
        # Callee names are global identity: never normalized.
        return f"call {dest} {instr.callee} {args}"
    if isinstance(instr, Input):
        return f"input {temp(instr.dest.name)}"
    if isinstance(instr, Jump):
        return f"jump {label(instr.target)}"
    if isinstance(instr, Branch):
        return (
            f"branch {value(instr.cond)} "
            f"{label(instr.true_target)} {label(instr.false_target)}"
        )
    if isinstance(instr, Return):
        return f"return {value(instr.value)}"
    raise TypeError(f"unknown instruction {instr!r}")


def _digest(text: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}\x00{text}".encode("utf-8")).hexdigest()


def function_fingerprint(function: Function, *, salt: str = "") -> str:
    """The semantic (rename-stable) fingerprint, hex SHA-256."""
    return _digest(canonical_function_text(function, normalize_names=True), salt)


def exact_fingerprint(function: Function, *, salt: str = "") -> str:
    """The exact (name-sensitive, location-free) fingerprint, hex SHA-256."""
    return _digest(canonical_function_text(function, normalize_names=False), salt)


def module_fingerprints(module, *, salt: str = "") -> Dict[str, Dict[str, str]]:
    """Both fingerprints for every function: name -> {semantic, exact}."""
    return {
        name: {
            "semantic": function_fingerprint(function, salt=salt),
            "exact": exact_fingerprint(function, salt=salt),
        }
        for name, function in module.functions.items()
    }
