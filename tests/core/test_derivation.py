"""Loop-carried derivation tests (paper §3.6 templates)."""

import pytest

from repro.core.rangeset import RangeSet
from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis
from repro.lang import compile_source

from tests.helpers import analyse, prepare_single


def loop_phi_range(prediction, variable):
    """The range of the loop-header phi for a source variable."""
    candidates = {
        name: rangeset
        for name, rangeset in prediction.values.items()
        if name.startswith(variable + ".")
    }
    # The header phi is the version with the widest range; pick version 1
    # (entry def is .0, header phi is .1 by construction order).
    return candidates[f"{variable}.1"]


def extent(rangeset):
    assert rangeset.is_set and len(rangeset.ranges) == 1
    r = rangeset.ranges[0]
    return str(r.lo), str(r.hi), r.stride


class TestForLoopTemplates:
    def test_canonical_count_up(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 10; i = i + 1) { t = t + 1; } return t; }"
        )
        assert extent(loop_phi_range(prediction, "i")) == ("0", "10", 1)

    def test_le_bound(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i <= 10; i = i + 1) { t = t + 1; } return t; }"
        )
        assert extent(loop_phi_range(prediction, "i")) == ("0", "11", 1)

    def test_stride_two(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 10; i = i + 2) { t = t + 1; } return t; }"
        )
        assert extent(loop_phi_range(prediction, "i")) == ("0", "10", 2)

    def test_count_down(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 10; i > 0; i = i - 1) { t = t + 1; } return t; }"
        )
        assert extent(loop_phi_range(prediction, "i")) == ("0", "10", 1)

    def test_count_down_with_ge(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 10; i >= 0; i = i - 2) { t = t + 1; } return t; }"
        )
        assert extent(loop_phi_range(prediction, "i")) == ("-2", "10", 2)

    def test_ne_termination(self):
        prediction = analyse(
            "func main(n) { var i = 0; while (i != 8) { i = i + 1; } return i; }"
        )
        assert extent(loop_phi_range(prediction, "i")) == ("0", "8", 1)

    def test_nonzero_start(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 5; i < 50; i = i + 5) { t = t + 1; } return t; }"
        )
        # Limit is 49 + 5 = 54, snapped down to the progression point 50.
        assert extent(loop_phi_range(prediction, "i")) == ("5", "50", 5)


class TestWhileAndDoWhile:
    def test_do_while_asserts_after_increment(self):
        # Increment happens before the latch test: values stop at the bound.
        prediction = analyse(
            "func main(n) { var i = 0; do { i = i + 1; } while (i < 10); return i; }"
        )
        # The body phi sees 0..9 (the header is the body here).
        versions = [
            rangeset
            for name, rangeset in prediction.values.items()
            if name.startswith("i.") and rangeset.is_set
        ]
        hulls = [extent(v) for v in versions if len(v.ranges) == 1]
        assert ("0", "9", 1) in hulls  # the loop phi

    def test_multiple_increment_paths(self):
        prediction = analyse(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 20; i = i + 1) {
                if (t > 5) { i = i + 2; }
                t = t + 1;
              }
              return i;
            }
            """
        )
        lo, hi, stride = extent(loop_phi_range(prediction, "i"))
        assert lo == "0"
        assert hi == "22"  # worst path: asserted <=19 then +3
        assert stride == 1  # gcd(1, 3)


class TestSymbolicBounds:
    def test_symbolic_limit_from_parameter(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < n; i = i + 1) { t = t + 1; } return t; }"
        )
        rangeset = loop_phi_range(prediction, "i")
        lo, hi, stride = extent(rangeset)
        assert lo == "0"
        assert stride == 1
        assert hi.startswith("n.")  # [0 : n]

    def test_constant_parameter_resolves(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < n; i = i + 1) { t = t + 1; } return t; }",
            param_ranges={"n": RangeSet.constant(100)},
        )
        assert prediction.branch_probability  # loop branch present
        # P(i < 100 | i in [0:100]) = 100/101.
        (probability,) = [
            p for label, p in prediction.branch_probability.items()
        ]
        assert probability == pytest.approx(100 / 101)


class TestFailureModes:
    def test_geometric_sequence_fails_derivation(self):
        # x = x * 2 is out of template; brute force + widening takes over.
        prediction = analyse(
            "func main(n) { var x = 1; while (x < 1000) { x = x * 2; } return x; }"
        )
        assert prediction.counters.derivations_attempted >= 1
        # The loop phi is not a clean derived range but analysis terminated.
        assert prediction.branch_probability

    def test_copy_back_phi_is_initial_value(self):
        prediction = analyse(
            """
            func main(n) {
              var limit = 100;
              var t = 0;
              for (i = 0; i < limit; i = i + 1) { t = t + 1; }
              return limit;
            }
            """
        )
        # limit is re-merged each iteration unchanged: derived as {100}.
        limit_versions = {
            name: rangeset
            for name, rangeset in prediction.values.items()
            if name.startswith("limit.")
        }
        assert all(
            rangeset.constant_value() == 100 for rangeset in limit_versions.values()
        )

    def test_data_dependent_step_fails(self):
        prediction = analyse(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 100; i = i + n) { t = t + 1; }
              return t;
            }
            """
        )
        # Step is a parameter: not a constant template; must still terminate.
        assert prediction.branch_probability

    def test_nested_loop_outer_derives_through_inner(self):
        prediction = analyse(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 12; i = i + 1) {
                for (j = 0; j < 6; j = j + 1) { t = t + 1; }
              }
              return t;
            }
            """
        )
        assert extent(loop_phi_range(prediction, "i")) == ("0", "12", 1)
        # Inner loop branch is exact: P(j < 6) = 6/7.
        probabilities = sorted(prediction.branch_probability.values())
        assert probabilities[0] == pytest.approx(6 / 7)
        assert probabilities[1] == pytest.approx(12 / 13)

    def test_outer_variable_incremented_in_inner_loop_fails(self):
        # i moves inside the inner loop a data-dependent number of times.
        prediction = analyse(
            """
            func main(n) {
              var i = 0;
              while (i < 100) {
                var j = 0;
                while (j < n) { i = i + 1; j = j + 1; }
                i = i + 1;
              }
              return i;
            }
            """
        )
        assert prediction.branch_probability  # no hang, heuristics allowed
