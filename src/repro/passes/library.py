"""The built-in passes: every §6 client, ported onto the framework.

Each pass is a thin declarative wrapper over the corresponding free
function in :mod:`repro.opt` / :mod:`repro.analysis` -- the free
functions remain the single source of truth for the transformations
(and stay independently callable); the wrappers add the
``requires``/``preserves`` contracts the pipeline schedules by.

Preservation contracts follow the free-function pipeline's semantics
(``tests/integration/test_optimization_pipeline.py``): one prediction
is computed up front and deliberately kept in use across the constant/
copy folds -- so those passes declare ``prediction`` preserved -- while
branch folding rewrites the CFG and clobbers everything.
"""

from __future__ import annotations

from repro.passes.base import (
    PRESERVES_ALL,
    PRESERVES_NONE,
    STRUCTURAL,
    FunctionPass,
    ModulePass,
    PassResult,
)
from repro.passes.pipeline import register_pass


# -- mutating function passes -------------------------------------------------


@register_pass
class FoldConstantsPass(FunctionPass):
    """Replace uses of VRP-proven constants with immediates."""

    name = "fold-constants"
    requires = frozenset(("prediction",))
    preserves = STRUCTURAL | frozenset(("prediction", "frequency"))
    mutates = True

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.constfold import fold_constants

        changed = fold_constants(function, cache.function_prediction(function))
        return PassResult(changed=changed)


@register_pass
class FoldCopiesPass(FunctionPass):
    """Replace uses of VRP-proven copies with their sources."""

    name = "fold-copies"
    requires = frozenset(("prediction",))
    preserves = STRUCTURAL | frozenset(("prediction", "frequency"))
    mutates = True

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.constfold import fold_copies

        changed = fold_copies(function, cache.function_prediction(function))
        return PassResult(changed=changed)


@register_pass
class FoldBranchesPass(FunctionPass):
    """Fold branches VRP proves one-sided; removes unreachable blocks."""

    name = "fold-branches"
    requires = frozenset(("prediction",))
    preserves = PRESERVES_NONE
    mutates = True

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.dce import fold_certain_branches

        changed = fold_certain_branches(
            function, cache.function_prediction(function)
        )
        return PassResult(changed=changed)


@register_pass
class DeadCodeEliminationPass(FunctionPass):
    """Remove instructions whose results are transitively unused."""

    name = "dce"
    preserves = STRUCTURAL
    mutates = True

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.dce import eliminate_dead_code

        return PassResult(changed=eliminate_dead_code(function))


@register_pass
class CopyPropagationPass(FunctionPass):
    """Rewrite uses of SSA copies to their ultimate sources."""

    name = "copyprop"
    preserves = STRUCTURAL
    mutates = True

    def run_on_function(self, function, cache) -> PassResult:
        from repro.analysis.copyprop import propagate_copies

        return PassResult(changed=propagate_copies(function))


# -- mutating module passes ---------------------------------------------------


@register_pass
class InlineHotCallsPass(ModulePass):
    """Inline small, hot, non-recursive callees (prediction-driven)."""

    name = "inline-hot"
    requires = frozenset(("prediction",))
    preserves = PRESERVES_NONE
    mutates = True

    def run_on_module(self, module, cache) -> PassResult:
        from repro.opt.inlining import inline_hot_calls

        decisions = inline_hot_calls(module, cache.prediction())
        return PassResult(
            changed=len(decisions),
            data=decisions,
            touched={decision.caller for decision in decisions},
        )


# -- analysis / report passes (non-mutating) ----------------------------------


class _AnalysisPass(FunctionPass):
    """Base for read-only function passes: preserve everything."""

    preserves = PRESERVES_ALL
    mutates = False


@register_pass
class PredictPass(ModulePass):
    """Materialise the VRP module prediction (the paper's deliverable)."""

    name = "predict"
    requires = frozenset(("prediction",))
    preserves = PRESERVES_ALL
    mutates = False

    def run_on_module(self, module, cache) -> PassResult:
        return PassResult(data=cache.prediction())


@register_pass
class UnreachablePass(_AnalysisPass):
    """Report probability-zero blocks and never-taken edges."""

    name = "unreachable"
    requires = frozenset(("prediction",))

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.unreachable import dead_edges, unreachable_blocks

        prediction = cache.function_prediction(function)
        return PassResult(
            data={
                "blocks": sorted(unreachable_blocks(function, prediction)),
                "edges": sorted(dead_edges(function, prediction)),
            }
        )


@register_pass
class BoundsCheckPass(_AnalysisPass):
    """Classify array accesses as provably safe/unsafe/unknown."""

    name = "bounds-check"
    requires = frozenset(("prediction",))

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.boundscheck import analyse_bounds_checks, eliminated_fraction

        reports = analyse_bounds_checks(function, cache.function_prediction(function))
        return PassResult(
            data={
                "reports": reports,
                "eliminated_fraction": eliminated_fraction(reports),
            }
        )


@register_pass
class ArrayAliasPass(_AnalysisPass):
    """Disambiguate array accesses by their index ranges."""

    name = "array-alias"
    requires = frozenset(("prediction",))

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.array_alias import (
            collect_accesses,
            disambiguated_fraction,
            independent_pairs,
        )

        accesses = collect_accesses(function, cache.function_prediction(function))
        pairs = independent_pairs(accesses)
        return PassResult(
            data={
                "accesses": accesses,
                "pairs": pairs,
                "disambiguated_fraction": disambiguated_fraction(pairs),
            }
        )


@register_pass
class LayoutPass(_AnalysisPass):
    """Pettis-Hansen block layout from predicted edge frequencies."""

    name = "layout"
    requires = frozenset(("prediction",))

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.layout import chain_layout

        prediction = cache.function_prediction(function)
        return PassResult(data=chain_layout(function, prediction.edge_frequency))


@register_pass
class SuperblockPass(_AnalysisPass):
    """Select straight-line traces (superblocks) from the prediction."""

    name = "superblock"
    requires = frozenset(("prediction",))

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.superblock import form_traces, trace_statistics

        traces = form_traces(function, cache.function_prediction(function))
        return PassResult(
            data={"traces": traces, "statistics": trace_statistics(traces)}
        )


@register_pass
class SpeculationPass(_AnalysisPass):
    """Score hoisting candidates for speculative scheduling."""

    name = "speculation"
    requires = frozenset(("prediction",))

    def run_on_function(self, function, cache) -> PassResult:
        from repro.opt.speculation import hoisting_candidates, useless_speculation

        prediction = cache.function_prediction(function)
        return PassResult(
            data={
                "candidates": hoisting_candidates(function, prediction),
                "useless": useless_speculation(function, prediction),
            }
        )


@register_pass
class SCCPPass(_AnalysisPass):
    """Sparse conditional constant propagation (the subsumed baseline)."""

    name = "sccp"

    def run_on_function(self, function, cache) -> PassResult:
        from repro.analysis.sccp import run_sccp

        ssa_info = cache.ssa_infos.get(function.name)
        if ssa_info is None:
            raise ValueError(
                f"sccp needs the SSAInfo for {function.name!r}; "
                "construct the AnalysisCache with ssa_infos"
            )
        return PassResult(data=run_sccp(function, ssa_info))


@register_pass
class FunctionOrderPass(ModulePass):
    """Frequency-ordered function processing and allocation priority."""

    name = "function-order"
    requires = frozenset(("prediction",))
    preserves = PRESERVES_ALL
    mutates = False

    def run_on_module(self, module, cache) -> PassResult:
        from repro.opt.function_order import allocation_priority, function_order

        prediction = cache.prediction()
        return PassResult(
            data={
                "order": function_order(module, prediction),
                "allocation_priority": allocation_priority(module, prediction),
            }
        )


@register_pass
class DiagnosePass(ModulePass):
    """Run the static-diagnostics rules over the prediction."""

    name = "diagnose"
    requires = frozenset(("prediction",))
    preserves = PRESERVES_ALL
    mutates = False

    def run_on_module(self, module, cache) -> PassResult:
        from repro.diagnostics import check_module

        report = check_module(
            module, cache.prediction(), program=getattr(module, "name", "module")
        )
        return PassResult(data=report)
