"""Request/response shapes of the serving protocol.

One request analyses one program.  The JSON body is::

    {
      "command": "predict",          # predict|check|ranges|ir|run
      "source":  "func main() ...",  # program text, required
      "name":    "examples/foo.toy", # display name (check reports,
                                     # metrics); "-" when omitted
      "options": { ... }             # per-command knobs, all optional
    }

``options`` accepts the one-shot CLI's analysis flags (``intra``,
``numeric``, ``no_derive``, ``track_arrays``, ``max_ranges``,
``context_depth``) plus
``format``/``fail_on`` for ``check`` and ``args``/``inputs``/
``max_steps`` for ``run``.  Unknown options are rejected: a typo that
silently falls back to a default would poison the content-addressed
cache with results the caller did not ask for.

The response's *deterministic core* -- ``status``, ``command``,
``output``, ``exit_code``, ``degraded``, ``error`` -- is exactly what
the result cache stores; per-request fields (``cached``, ``elapsed_ms``,
``key``) are attached afterwards so a cache hit is byte-identical to
the fresh computation.  ``output`` is the one-shot CLI's stdout,
trailing newline included.

A batch request (``/v1/batch``) is ``{"items": [request, ...]}`` and
answers ``{"results": [response, ...]}`` in submission order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Commands the service executes, mirroring the one-shot CLI.
COMMANDS = ("predict", "check", "ranges", "ir", "run")

#: Options shared by every command (the CLI's analysis flags, plus
#: ``trace`` -- "return the engine's spans with the response").  ``trace``
#: is observational: :func:`canonical_options` leaves it out of the
#: cache key, and the spans are attached after the cache decision, so a
#: traced request and an untraced one share results byte-for-byte.
_ANALYSIS_OPTIONS = {
    "intra": bool,
    "numeric": bool,
    "no_derive": bool,
    "track_arrays": bool,
    "max_ranges": int,
    "context_depth": int,
    "trace": bool,
}

#: Extra options per command.
_COMMAND_OPTIONS = {
    "predict": {},
    "ranges": {},
    "ir": {},
    "check": {"format": str, "fail_on": str},
    "run": {"args": list, "inputs": list, "max_steps": int, "profile": bool},
}

_CHECK_FORMATS = ("text", "json", "sarif")
_CHECK_FAIL_ON = ("error", "warning", "never")

#: Ceiling on one batch submission; a bigger fleet should be split into
#: several requests so backpressure stays per-request-sized.
MAX_BATCH_ITEMS = 64


class ProtocolError(ValueError):
    """The request body does not follow the protocol (HTTP 400)."""


def validate_request(
    body: dict, command: Optional[str] = None
) -> Tuple[str, str, str, Dict[str, object]]:
    """Check one request body; returns (command, source, name, options).

    ``command`` (from the URL route) overrides the body's ``command``
    key when given; a body that names a *different* command is rejected
    rather than silently rerouted.
    """
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    declared = body.get("command")
    if declared is not None and not isinstance(declared, str):
        raise ProtocolError("'command' must be a string")
    if command is None:
        command = declared
    elif declared is not None and declared != command:
        raise ProtocolError(
            f"body names command {declared!r} but was posted to the "
            f"{command!r} endpoint"
        )
    if command is None:
        raise ProtocolError("missing 'command'")
    if command not in COMMANDS:
        raise ProtocolError(
            f"unknown command {command!r}; expected one of {', '.join(COMMANDS)}"
        )

    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("missing or empty 'source'")

    name = body.get("name", "-")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'name' must be a non-empty string")

    options = body.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be an object")
    allowed = dict(_ANALYSIS_OPTIONS)
    allowed.update(_COMMAND_OPTIONS[command])
    clean: Dict[str, object] = {}
    for key, value in options.items():
        expected = allowed.get(key)
        if expected is None:
            raise ProtocolError(
                f"unknown option {key!r} for command {command!r}"
            )
        # bool is an int subclass: check bool-typed options strictly and
        # keep True out of int-typed ones.
        if expected is bool:
            if not isinstance(value, bool):
                raise ProtocolError(f"option {key!r} must be a boolean")
        elif expected is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"option {key!r} must be an integer")
        elif not isinstance(value, expected):
            raise ProtocolError(
                f"option {key!r} must be a {expected.__name__}"
            )
        clean[key] = value
    if command == "check":
        if clean.get("format", "text") not in _CHECK_FORMATS:
            raise ProtocolError(
                f"option 'format' must be one of {', '.join(_CHECK_FORMATS)}"
            )
        if clean.get("fail_on", "error") not in _CHECK_FAIL_ON:
            raise ProtocolError(
                f"option 'fail_on' must be one of {', '.join(_CHECK_FAIL_ON)}"
            )
    for key in ("args", "inputs"):
        if key in clean and not all(
            isinstance(v, int) and not isinstance(v, bool) for v in clean[key]
        ):
            raise ProtocolError(f"option {key!r} must be a list of integers")
    if "max_ranges" in clean and clean["max_ranges"] < 1:
        raise ProtocolError("option 'max_ranges' must be >= 1")
    if "context_depth" in clean and clean["context_depth"] < 0:
        raise ProtocolError("option 'context_depth' must be >= 0")
    return command, source, name, clean


def validate_batch(body: dict) -> List[dict]:
    """Check a batch envelope; returns the raw item list."""
    if not isinstance(body, dict):
        raise ProtocolError("batch body must be a JSON object")
    items = body.get("items")
    if not isinstance(items, list) or not items:
        raise ProtocolError("batch body needs a non-empty 'items' list")
    if len(items) > MAX_BATCH_ITEMS:
        raise ProtocolError(
            f"batch of {len(items)} items exceeds the cap of {MAX_BATCH_ITEMS}"
        )
    return items


def canonical_options(command: str, options: Dict[str, object]) -> Dict[str, object]:
    """The options as cache-key material: defaults applied, noise dropped.

    Engine knobs (``numeric``, ``max_ranges``...) are *excluded* -- the
    config fingerprint already covers them -- so a request that spells
    out a default hits the same key as one that omits it.  Only options
    that change results and live outside :class:`VRPConfig` remain.
    """
    canonical: Dict[str, object] = {"intra": bool(options.get("intra", False))}
    if command == "check":
        canonical["format"] = str(options.get("format", "text"))
        canonical["fail_on"] = str(options.get("fail_on", "error"))
    elif command == "run":
        canonical["args"] = [int(v) for v in options.get("args", [])]
        canonical["inputs"] = [int(v) for v in options.get("inputs", [])]
        canonical["max_steps"] = int(options.get("max_steps", 5_000_000))
        canonical["profile"] = bool(options.get("profile", False))
    return canonical


def error_response(command: Optional[str], message: str) -> dict:
    """The deterministic core of a failed request."""
    return {
        "status": "error",
        "command": command,
        "output": "",
        "exit_code": 1,
        "degraded": False,
        "error": message,
    }
