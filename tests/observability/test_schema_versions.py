"""Metrics schema compatibility: v1-v7 documents still validate under v8."""

from repro.observability.metrics import (
    OPTIONAL_KEYS,
    SCHEMA_KEYS,
    SCHEMA_VERSION,
    MetricsReport,
    validate_report_dict,
)


def base_document(version: int) -> dict:
    return {
        "schema_version": version,
        "program": "p",
        "phases": {},
        "counters": {},
        "branches": [
            {"function": "main", "label": "if1", "probability": 0.5,
             "source": "ranges"},
        ],
        "meta": {},
    }


class TestHistoricalDocuments:
    def test_v1_validates(self):
        assert validate_report_dict(base_document(1)) is None

    def test_v2_with_diagnostics_validates(self):
        document = dict(base_document(2), diagnostics=[])
        assert validate_report_dict(document) is None

    def test_v3_with_perf_validates(self):
        document = dict(base_document(3), diagnostics=[], perf={})
        assert validate_report_dict(document) is None

    def test_v4_with_passes_validates(self):
        document = dict(base_document(4), diagnostics=[], perf={}, passes={})
        assert validate_report_dict(document) is None

    def test_v5_with_server_validates(self):
        document = dict(
            base_document(5), diagnostics=[], perf={}, passes={}, server={}
        )
        assert validate_report_dict(document) is None

    def test_v6_with_profile_and_tracing_validates(self):
        document = dict(
            base_document(6),
            diagnostics=[], perf={}, passes={}, server={},
            profile={"wall_seconds": 0.1}, tracing={"trace_id": "0" * 32},
        )
        assert validate_report_dict(document) is None

    def test_v7_with_interprocedural_validates(self):
        document = dict(
            base_document(7),
            diagnostics=[], perf={}, passes={}, server={},
            profile={}, tracing={},
            interprocedural={
                "rounds": 2, "max_rounds": 8, "converged": True,
                "round_cap_hits": 0, "context_depth": 1,
                "contexts_analyzed": 4,
                "summary_cache": {"hits": 3, "misses": 4, "evictions": 0},
            },
        )
        assert validate_report_dict(document) is None

    def test_v8_with_incremental_validates(self):
        document = dict(
            base_document(8),
            diagnostics=[], perf={}, passes={}, server={},
            profile={}, tracing={}, interprocedural={},
            incremental={
                "reanalyzed": 1, "replayed": 4,
                "components": {"reanalyzed": 1, "replayed": 2},
                "store": {"hits": 2, "misses": 1, "evictions": 0},
            },
        )
        assert validate_report_dict(document) is None


class TestSchemaShape:
    def test_current_version_is_8(self):
        assert SCHEMA_VERSION == 8

    def test_every_new_key_since_v1_is_optional(self):
        required = set(SCHEMA_KEYS) - set(OPTIONAL_KEYS)
        assert required == {
            "schema_version", "program", "phases", "counters", "branches",
            "meta",
        }

    def test_v6_keys_are_optional(self):
        for key in ("profile", "tracing"):
            assert key in OPTIONAL_KEYS
            assert key in SCHEMA_KEYS

    def test_v7_key_is_optional(self):
        assert "interprocedural" in OPTIONAL_KEYS
        assert "interprocedural" in SCHEMA_KEYS

    def test_v8_key_is_optional(self):
        assert "incremental" in OPTIONAL_KEYS
        assert "incremental" in SCHEMA_KEYS

    def test_missing_required_key_is_an_error(self):
        document = base_document(6)
        del document["counters"]
        assert "counters" in validate_report_dict(document)

    def test_malformed_branch_record_is_an_error(self):
        document = base_document(6)
        document["branches"] = [{"function": "main"}]
        assert "label" in validate_report_dict(document)

    def test_report_roundtrip_preserves_the_server_key(self):
        report = MetricsReport(program="p", server={"degraded": 3})
        clone = MetricsReport.from_dict(report.to_dict())
        assert clone.server == {"degraded": 3}
        assert clone.schema_version == SCHEMA_VERSION

    def test_report_roundtrip_preserves_profile_and_tracing(self):
        report = MetricsReport(
            program="p",
            profile={"wall_seconds": 1.5, "spans": []},
            tracing={"trace_id": "ab" * 16, "span_id": "cd" * 8},
        )
        clone = MetricsReport.from_dict(report.to_dict())
        assert clone.profile == {"wall_seconds": 1.5, "spans": []}
        assert clone.tracing == {"trace_id": "ab" * 16, "span_id": "cd" * 8}

    def test_report_roundtrip_preserves_the_incremental_key(self):
        report = MetricsReport(
            program="p", incremental={"reanalyzed": 2, "replayed": 7}
        )
        clone = MetricsReport.from_dict(report.to_dict())
        assert clone.incremental == {"reanalyzed": 2, "replayed": 7}

    def test_from_dict_accepts_documents_without_new_keys(self):
        report = MetricsReport.from_dict(base_document(4))
        assert report.server == {}
        assert report.profile == {}
        assert report.tracing == {}
        assert report.incremental == {}
