"""Speculation assessment + function ordering + array tracking tests."""

import pytest

from repro.core import VRPConfig, VRPPredictor
from repro.opt.function_order import allocation_priority, function_order
from repro.opt.speculation import (
    execution_probability,
    hoisting_candidates,
    path_probability,
    useless_speculation,
)

from tests.helpers import analyse, compile_and_prepare


class TestSpeculation:
    def test_paper_motivating_arithmetic(self):
        # Two 60%-taken branches in a row: the block below both executes
        # 36% of the time -- exactly the paper's speculation argument.
        source = """
        func main(n) {
          var hits = 0;
          for (i = 0; i < 1000; i = i + 1) {
            var a = input() % 10;
            var b = input() % 10;
            if (a < 6) {
              if (b < 6) {
                hits = hits + 1;
              }
            }
          }
          return hits;
        }
        """
        prediction = analyse(source)
        # Find the innermost then-block (frequency ~0.36 per iteration).
        labels = sorted(prediction.branch_probability)
        inner_probabilities = [
            prediction.branch_probability[label] for label in labels
        ]
        assert any(abs(p - 0.6) < 0.01 for p in inner_probabilities)
        # The hoisting table must contain a candidate with ~36% usefulness.
        candidates = hoisting_candidates(prediction.function, prediction)
        assert any(
            abs(c.usefulness - 0.36) < 0.02 and c.speculation_depth >= 2
            for c in candidates
        ), candidates

    def test_execution_probability_of_dominator_is_one(self):
        prediction = analyse(
            "func main(n) { var x = 1; if (x < 5) { n = 1; } return n; }"
        )
        entry = prediction.function.entry_label
        assert execution_probability(prediction, entry, entry) == pytest.approx(1.0)

    def test_path_probability_multiplies_edges(self):
        prediction = analyse(
            "func main(n) { var x = 1; if (x < 5) { n = 1; } return n; }"
        )
        (label,) = prediction.branch_probability
        branch = prediction.function.block(label).terminator
        path = [label, branch.true_target]
        assert path_probability(prediction, path) == pytest.approx(1.0)

    def test_useless_speculation_found(self):
        source = """
        func main(n) {
          var total = 0;
          for (i = 0; i < 100; i = i + 1) {
            var v = input() % 100;
            if (v < 50) {
              if (v < 25) {
                if (v < 5) {
                  total = total + 1;
                }
              }
            }
          }
          return total;
        }
        """
        prediction = analyse(source)
        wasted = useless_speculation(prediction.function, prediction, threshold=0.2)
        assert wasted  # the v<5 block is ~5% useful from two levels up

    def test_candidates_sorted_best_first(self):
        prediction = analyse(
            "func main(n) { if (n > 0) { n = 1; } else { n = 2; } return n; }"
        )
        candidates = hoisting_candidates(prediction.function, prediction)
        usefulness = [c.usefulness for c in candidates]
        assert usefulness == sorted(usefulness, reverse=True)


class TestFunctionOrder:
    def test_hot_leaf_ranked_above_cold_helper(self):
        source = """
        func hot() { return 1; }
        func cold() { return 2; }
        func main(n) {
          var total = 0;
          for (i = 0; i < 500; i = i + 1) { total = total + hot(); }
          if (n == 123456) { total = total + cold(); }
          return total;
        }
        """
        module, infos = compile_and_prepare(source)
        prediction = VRPPredictor().predict_module(module, infos)
        ordered = function_order(module, prediction)
        names = [name for name, _ in ordered]
        assert names.index("hot") < names.index("cold")
        frequencies = dict(ordered)
        assert frequencies["hot"] == pytest.approx(500, rel=0.1)
        assert frequencies["main"] == pytest.approx(1.0)

    def test_allocation_priority_names_only(self):
        source = "func main(n) { return n; }"
        module, infos = compile_and_prepare(source)
        prediction = VRPPredictor().predict_module(module, infos)
        assert allocation_priority(module, prediction) == ["main"]


class TestArrayTracking:
    SOURCE = """
    func main(n) {
      array a[32];
      for (i = 0; i < 32; i = i + 1) { a[i] = i % 4; }
      var small = 0;
      for (i = 0; i < 32; i = i + 1) {
        if (a[i] < 4) { small = small + 1; }
      }
      return small;
    }
    """

    def test_default_loads_are_bottom(self):
        prediction = analyse(self.SOURCE)
        assert prediction.used_heuristic  # branch on a load falls back

    def test_tracking_bounds_loads(self):
        prediction = analyse(self.SOURCE, config=VRPConfig(track_arrays=True))
        # a holds values in [0:3] (plus the zero initialiser): the branch
        # a[i] < 4 is provably always taken.
        (load_branch,) = [
            label
            for label in prediction.branch_probability
            if label not in prediction.used_heuristic
            and prediction.branch_probability[label] == pytest.approx(1.0)
        ]
        assert load_branch

    def test_tracking_stays_sound_with_unknown_stores(self):
        source = """
        func main(n) {
          array a[8];
          a[0] = input();
          if (a[1] > 100) { return 1; }
          return 0;
        }
        """
        prediction = analyse(source, config=VRPConfig(track_arrays=True))
        # An unknown store poisons the whole array: back to heuristics.
        assert prediction.used_heuristic

    def test_tracking_terminates_on_self_update(self):
        source = """
        func main(n) {
          array a[4];
          for (i = 0; i < 100; i = i + 1) {
            a[i % 4] = a[(i + 1) % 4] + 1;
          }
          return a[0];
        }
        """
        prediction = analyse(source, config=VRPConfig(track_arrays=True))
        assert not prediction.aborted
