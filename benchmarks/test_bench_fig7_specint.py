"""Figure 7: prediction accuracy on the SPECint-like suite.

Regenerates both panels (unweighted and execution-count weighted) of the
paper's Figure 7 as error-CDF tables, and asserts the orderings the
paper reports: profiling best, VRP above the heuristic baselines, the
90/50 rule and random prediction far behind.
"""

from benchmarks.conftest import emit
from repro.evalharness import (
    SuiteEvaluation,
    area_under_cdf,
    evaluate_workload,
    format_suite_figure,
)


def evaluate(prepared_workloads):
    return SuiteEvaluation(
        suite_name="SPECint-like",
        evaluations=[
            evaluate_workload(p.workload, prepared=p) for p in prepared_workloads
        ],
    )


def test_figure7_specint(benchmark, results_dir, prepared_int_suite):
    evaluation = benchmark.pedantic(
        lambda: evaluate(prepared_int_suite), rounds=1, iterations=1
    )
    unweighted = format_suite_figure(
        evaluation, weighted=False, title="Figure 7a: SPECint-like, unweighted"
    )
    weighted = format_suite_figure(
        evaluation, weighted=True, title="Figure 7b: SPECint-like, weighted"
    )
    emit(results_dir, "fig7_specint.txt", unweighted + "\n\n" + weighted)

    for is_weighted in (False, True):
        auc = {
            name: area_under_cdf(evaluation.aggregate_cdf(name, weighted=is_weighted))
            for name in evaluation.predictors()
        }
        # The paper's ordering on integer code.
        assert auc["profile"] > auc["vrp"], auc
        assert auc["vrp"] > auc["rule-90-50"], auc
        assert auc["vrp"] > auc["random"], auc
        assert auc["ball-larus"] > auc["rule-90-50"], auc
        # VRP at least matches the best heuristic on integer code (the
        # paper's gap here is modest; ours may be within a few points).
        assert auc["vrp"] >= auc["ball-larus"] - 2.0, auc
