"""Configuration for the value range propagation engine.

Every knob corresponds to a tradeoff the paper discusses; the defaults
are the paper's choices.  The ablation benchmarks sweep these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.perf.context import globally_enabled as _default_perf

# Process-wide default for :attr:`VRPConfig.verify_ir`.  Production runs
# leave it off; the test suite turns it on (tests/conftest.py) so every
# IR-mutating pass is verified at the point it ran.
_DEFAULT_VERIFY_IR = False


def set_default_verify_ir(enabled: bool) -> None:
    """Set the process-wide default for :attr:`VRPConfig.verify_ir`."""
    global _DEFAULT_VERIFY_IR
    _DEFAULT_VERIFY_IR = bool(enabled)


def default_verify_ir() -> bool:
    """Current process-wide default for :attr:`VRPConfig.verify_ir`."""
    return _DEFAULT_VERIFY_IR


@dataclass
class VRPConfig:
    """Tunable parameters of value range propagation."""

    # Maximum ranges per variable (paper §3.4: "normally no more than four").
    max_ranges: int = 4
    # Track symbolic (variable-relative) ranges (paper's "with symbolic
    # ranges" vs "numeric ranges only" result lines).
    symbolic: bool = True
    # Derive loop-carried variables from templates instead of iterating
    # (paper §3.6); disabling falls back to brute-force propagation.
    derive_loops: bool = True
    # Prefer draining the FlowWorkList before the SSAWorkList (paper §3.3
    # step 2: "tends to cause information to be gathered more quickly").
    prefer_flow_list: bool = True
    # Probability / frequency change below this does not count as a
    # lattice change (fixed-point tolerance).
    tolerance: float = 1e-4
    # After this many re-evaluations of one phi, widen it (engineering
    # guard for underived loops; the paper notes brute-force iteration
    # "might only iterate several million times!").
    widen_after: int = 24
    # A phi whose value keeps *changing* -- even without hull growth,
    # e.g. an alternating recurrence reweighting probabilities forever --
    # freezes at its current value after this many changes.
    freeze_after: int = 200
    # Largest progression swept exactly in comparison counting; larger
    # pairs use the continuous approximation.
    exact_count_limit: int = 8192
    # When more than this fraction of a comparison's probability mass is
    # undecidable, the branch falls back to heuristics.
    max_unknown_mass: float = 0.5
    # Cap on block frequencies (infinite loops would diverge).
    frequency_cap: float = 1e9
    # Probability used for a branch before anything is known about it.
    default_branch_probability: float = 0.5
    # Track array contents flow-insensitively: a load returns the merge
    # of every range stored to that array (plus the zero initialiser)
    # instead of ⊥.  The paper treats loads as ⊥ "unless detailed alias
    # analysis information is available" -- this is the simplest such
    # analysis, sound for the toy language's function-local arrays.
    # Off by default (the paper's configuration).
    track_arrays: bool = False
    # k-limited context sensitivity for interprocedural analysis: at a
    # call site whose callee is provably effect-free, analyse the callee
    # under the site's own (abstracted) argument ranges instead of the
    # frequency-weighted merge over all sites, to a nesting depth of k.
    # 0 (the default) reproduces the context-insensitive behaviour
    # byte-for-byte; the summary cache bounds the cost of k >= 1.
    context_depth: int = 0
    # Incremental analysis (``repro.incremental``): replay unchanged
    # callgraph components from a content-addressed summary store
    # instead of re-running their interprocedural fixed points.
    # Behaviour-neutral by the byte-identity contract
    # (docs/INCREMENTAL.md): rendered predictions and diagnostics are
    # identical with the store cold, warm, or absent.
    incremental: bool = False
    # Debug-mode lattice sanitizer: validate engine invariants during
    # propagation (transitions only descend the lattice, pi assertions
    # only narrow, branch out-edge frequencies sum to the block
    # frequency, no worklist item churns past stabilisation) and raise
    # :class:`repro.core.sanitize.SanitizerError` instead of silently
    # corrupting results.  Off by default: the enabled checks cost real
    # time, and the disabled hook is a single ``is not None`` test.
    sanitize: bool = False
    # Re-verify IR well-formedness after lowering and after every
    # IR-mutating optimisation pass, so corruption is caught at the
    # pass that introduced it.  Defaults to the process-wide setting
    # (off in production, on under the test suite).
    verify_ir: bool = field(default_factory=default_verify_ir)
    # Performance layer (``repro.core.perf``): hash-consed lattice
    # values, memoized range arithmetic, and operand-identity transfer
    # skipping.  Behaviour-neutral -- predictions and work counts are
    # byte-identical either way (docs/PERFORMANCE.md) -- so it defaults
    # to the process-wide switch, itself on unless ``REPRO_PERF=0``.
    # Turn it off when debugging object identity or cache behaviour.
    perf: bool = field(default_factory=_default_perf)
    # Bounded-LRU capacity of each memo cache (from_ranges, binop, ...).
    perf_memo_size: int = 16384
    # Capacity of each hash-consing table (Bound/StridedRange/RangeSet).
    perf_intern_size: int = 65536
