"""Command-line interface tests."""

import pytest

from repro.cli import main

PROGRAM = """
func main(n) {
  var t = 0;
  for (i = 0; i < 10; i = i + 1) { t = t + i; }
  if (t > 1000) { t = 0; }
  return t;
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "program.toy"
    path.write_text(PROGRAM)
    return str(path)


class TestPredict:
    def test_predict_prints_branches(self, program_file, capsys):
        assert main(["predict", program_file]) == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "90.9%" in out  # the 10/11 loop branch

    def test_numeric_flag_accepted(self, program_file, capsys):
        assert main(["predict", program_file, "--numeric", "--intra"]) == 0
        assert "main" in capsys.readouterr().out

    def test_max_ranges_flag(self, program_file, capsys):
        assert main(["predict", program_file, "--max-ranges", "2"]) == 0


class TestOtherCommands:
    def test_ir_dump(self, program_file, capsys):
        assert main(["ir", program_file]) == 0
        out = capsys.readouterr().out
        assert "phi" in out
        assert "pi" in out  # assertions present

    def test_ranges_dump(self, program_file, capsys):
        assert main(["ranges", program_file]) == 0
        out = capsys.readouterr().out
        assert "func main:" in out
        assert "[0:10:1]" in out

    def test_run_with_profile(self, program_file, capsys):
        assert main(["run", program_file, "--args", "0", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "return value: 45" in out
        assert "90.9%" in out

    def test_run_with_inputs(self, tmp_path, capsys):
        path = tmp_path / "echo.toy"
        path.write_text("func main(n) { return input() + input(); }")
        assert main(["run", str(path), "--args", "0", "--inputs", "20,22"]) == 0
        assert "return value: 42" in capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "tokenize" in out

    def test_evaluate_single_workload(self, capsys):
        assert main(["evaluate", "--workload", "interp"]) == 0
        out = capsys.readouterr().out
        assert "vrp" in out
        assert "profile" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestErrorHandling:
    def test_missing_file_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "/no/such/file.toy"])
        assert "no such file" in str(excinfo.value)

    def test_syntax_error_exits_cleanly(self, tmp_path):
        path = tmp_path / "bad.toy"
        path.write_text("func main(n) { returm 0; }")
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", str(path)])
        assert "error:" in str(excinfo.value)
