"""Speculation assessment for global instruction scheduling (paper §6).

The paper's first application: "the degree of speculation involved in
moving a particular instruction can be accurately assessed", and its
motivating arithmetic: "If each branch is taken 60% of the time, our
instruction will only be useful 36% of the time."

Given branch predictions, this module computes for every block the
probability it executes *given* that one of its dominators executes --
exactly the usefulness of hoisting an instruction from the block into
the dominator -- and ranks hoisting candidates for a scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.propagation import FunctionPrediction
from repro.ir.cfg import CFG
from repro.ir.dominance import DominatorTree
from repro.ir.function import Function


def execution_probability(
    prediction: FunctionPrediction, block: str, given: str
) -> float:
    """P(``block`` executes | ``given`` executes), from frequencies.

    Meaningful when ``given`` dominates ``block`` (each execution of
    ``block`` is preceded by one of ``given``); capped at 1 because loop
    frequencies can make the ratio exceed it for blocks inside deeper
    loops.
    """
    given_frequency = prediction.block_frequency.get(given, 0.0)
    if given_frequency <= 0.0:
        return 0.0
    ratio = prediction.block_frequency.get(block, 0.0) / given_frequency
    return min(1.0, ratio)


def path_probability(prediction: FunctionPrediction, path: List[str]) -> float:
    """Probability of following a specific block path, edge by edge."""
    probability = 1.0
    for src, dst in zip(path, path[1:]):
        probability *= prediction.probability_of_edge(src, dst)
    return probability


@dataclass
class HoistCandidate:
    """Moving instructions from ``block`` up to ``target`` (a dominator)."""

    block: str
    target: str
    usefulness: float  # P(block | target): fraction of speculated work used
    speculation_depth: int  # dominator-tree distance crossed

    def __repr__(self) -> str:
        return (
            f"HoistCandidate({self.block} -> {self.target}, "
            f"useful {self.usefulness:.0%}, depth {self.speculation_depth})"
        )


def hoisting_candidates(
    function: Function,
    prediction: FunctionPrediction,
    min_usefulness: float = 0.0,
) -> List[HoistCandidate]:
    """All (block, dominator) hoists with their usefulness, best first.

    A scheduler would combine usefulness with latency benefit; here the
    ranking alone reproduces the paper's argument that probabilities --
    not taken/not-taken bits -- are what speculation decisions need.
    """
    cfg = CFG(function)
    dom = DominatorTree(cfg)
    candidates: List[HoistCandidate] = []
    for block in cfg.reachable():
        depth = 0
        ancestor: Optional[str] = dom.idom.get(block)
        while ancestor is not None:
            depth += 1
            usefulness = execution_probability(prediction, block, ancestor)
            if usefulness >= min_usefulness:
                candidates.append(
                    HoistCandidate(
                        block=block,
                        target=ancestor,
                        usefulness=usefulness,
                        speculation_depth=depth,
                    )
                )
            ancestor = dom.idom.get(ancestor)
    candidates.sort(key=lambda c: (-c.usefulness, c.speculation_depth))
    return candidates


def useless_speculation(
    function: Function,
    prediction: FunctionPrediction,
    threshold: float = 0.2,
) -> List[HoistCandidate]:
    """Hoists a taken/not-taken predictor would green-light but whose
    *probability* shows to be mostly wasted work (usefulness below the
    threshold despite every branch on the way being 'likely')."""
    out = []
    for candidate in hoisting_candidates(function, prediction):
        if candidate.usefulness < threshold and candidate.speculation_depth >= 2:
            out.append(candidate)
    return out
