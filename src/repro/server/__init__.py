"""Prediction-as-a-service: the long-running ``repro serve`` daemon.

Every other entry point in the package is one-shot: it pays full
startup plus analysis cost for a single program and exits, so the perf
layer's caches (PR 3) and the pass manager's analysis cache (PR 4) only
amortize *within* one process.  This package is the resident shape of
the paper's claim that VRP is cheap enough to run routinely: a daemon
that accepts program text and answers with predictions, diagnostics,
IR, or execution profiles -- byte-identical to the corresponding
one-shot CLI output (see ``docs/SERVING.md``).

Two serving tiers share every contract (routes, backpressure, drain,
byte identity) and differ only in throughput:

* the **sharded tier** (the default): N shard *processes*, each with a
  resident engine and shard-local caches, behind a non-blocking
  selector front end that routes by consistent hash of the request's
  content address -- analysis scales with cores instead of serialising
  on the GIL;
* the **threaded tier** (``--shards 0``): the original single-process
  daemon with a bounded worker pool, for environments where forking is
  unwelcome.

Layers, bottom up:

* :mod:`.cache`    -- content-addressed result cache (SHA-256 of source
  + config fingerprint), memory tier over an on-disk tier that survives
  restarts and is safely shared between shard processes;
* :mod:`.workers`  -- bounded worker pool with request queueing (the
  threaded tier's concurrency);
* :mod:`.service`  -- command execution with per-request analysis
  timeouts and graceful degradation to heuristics-only prediction;
* :mod:`.stats`    -- per-endpoint request counts and latency
  histograms, cache tiers, degraded/rejected counters, and the
  computed ``Retry-After`` estimate;
* :mod:`.router`   -- the deterministic consistent-hash ring keyed by
  content address (cache affinity across shards);
* :mod:`.shard`    -- the shard worker process and its parent-side
  handle (pipe protocol, drain sentinel, respawn);
* :mod:`.frontend` -- the selector event loop in front of the shards;
* :mod:`.httpd`    -- the threaded HTTP front end plus the
  ``repro serve`` entry point that picks a tier;
* :mod:`.client`   -- the stdlib client behind ``repro submit``
  (including the ``--jobs N`` concurrent fan-out).

Everything is standard library only.
"""

from __future__ import annotations

from repro.server.cache import ResultCache, request_key
from repro.server.client import ServeClient, ServerError
from repro.server.frontend import ShardedServer
from repro.server.httpd import ReproServer, serve_daemon
from repro.server.protocol import (
    COMMANDS,
    ProtocolError,
    validate_request,
)
from repro.server.router import HashRing
from repro.server.service import AnalysisService, AnalysisTimeout, request_identity
from repro.server.shard import ShardHandle
from repro.server.stats import ServerStats, compute_retry_after
from repro.server.workers import QueueFullError, WorkerPool

__all__ = [
    "COMMANDS",
    "AnalysisService",
    "AnalysisTimeout",
    "HashRing",
    "ProtocolError",
    "QueueFullError",
    "ReproServer",
    "ResultCache",
    "ServeClient",
    "ServerError",
    "ServerStats",
    "ShardHandle",
    "ShardedServer",
    "WorkerPool",
    "compute_retry_after",
    "request_identity",
    "request_key",
    "serve_daemon",
    "validate_request",
]
