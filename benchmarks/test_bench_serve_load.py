"""Serving-tier load benchmark: 1 shard vs N shards, cold/hot/mixed.

Boots the sharded daemon in-process at two shard counts and drives it
with the closed-loop load generator (:mod:`repro.server.loadgen`) over
the three canonical workloads:

* **cold**  -- every request a distinct program: pure analysis
  bandwidth, the workload sharding exists for;
* **hot**   -- a small working set served from shard-local caches: the
  consistent-hash router's cache-affinity payoff;
* **mixed** -- alternating cold/hot, the realistic blend.

Emits ``BENCH_serve_load.json`` with throughput, p50/p99 latency, and
rejection rates for every (shards, workload) cell plus the cold-ratio
headline, and asserts the serving SLOs:

* shard scaling on the cold workload: on a >= 4-core runner the
  4-shard tier must clear **3x** the 1-shard throughput (the CI gate);
  on smaller machines the bar scales down to what the cores can give
  and bottoms out at a no-collapse check (sharding must never *cost*
  throughput on a box with real parallelism);
* saturation sheds load by rejection, never by error: a burst at a
  tiny queue produces 503s (counted) and zero transport/HTTP-5xx
  errors, and the daemon still answers cleanly afterwards;
* responses stay byte-identical across shard counts and equal to the
  engine's direct output (the CLI core), cold or cached.
"""

import json
import os
import threading

from benchmarks.conftest import emit
from repro.server.client import ServeClient
from repro.server.frontend import ShardedServer
from repro.server.loadgen import make_corpus, run_load
from repro.server.service import analyze_payload

CPU_COUNT = os.cpu_count() or 1
MANY_SHARDS = max(2, min(4, CPU_COUNT))
REQUESTS = 120
CONCURRENCY = 8
HOT_SET = 8
WORKLOADS = ("cold", "hot", "mixed")

#: Cold-workload throughput the N-shard tier must reach, as a multiple
#: of the 1-shard tier.  Real parallelism is required for the full 3x
#: CI gate; a 1-core container can only check that sharding does not
#: collapse under the extra IPC.
if CPU_COUNT >= 4:
    REQUIRED_COLD_RATIO = 3.0
elif CPU_COUNT >= 2:
    REQUIRED_COLD_RATIO = 0.6 * CPU_COUNT
else:
    REQUIRED_COLD_RATIO = 0.4


def start_server(shards: int, queue_size: int = 64) -> ShardedServer:
    server = ShardedServer(port=0, shards=shards, queue_size=queue_size)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    ServeClient(port=server.port).wait_ready()
    return server


def drive(server: ShardedServer, offset: int) -> dict:
    """All three workloads against one server; distinct cold corpora."""
    runs = {}
    for index, workload in enumerate(WORKLOADS):
        runs[workload] = run_load(
            "127.0.0.1",
            server.port,
            requests=REQUESTS,
            concurrency=CONCURRENCY,
            workload=workload,
            hot_set=HOT_SET,
            corpus_offset=offset + index * 10_000,
        )
    return runs


def test_bench_serve_load(results_dir):
    # -- throughput/latency cells -----------------------------------------
    single = start_server(shards=1)
    try:
        single_runs = drive(single, offset=0)
        single_sample = ServeClient(port=single.port).analyze(
            "predict", make_corpus(1, offset=777_000)[0]
        )
    finally:
        assert single.drain(timeout=30)

    many = start_server(shards=MANY_SHARDS)
    try:
        many_runs = drive(many, offset=100_000)
        many_sample = ServeClient(port=many.port).analyze(
            "predict", make_corpus(1, offset=777_000)[0]
        )
        many_sample_repeat = ServeClient(port=many.port).analyze(
            "predict", make_corpus(1, offset=777_000)[0]
        )
    finally:
        assert many.drain(timeout=30)

    # -- byte identity across shard counts and vs the engine core ---------
    direct = analyze_payload(
        "predict", make_corpus(1, offset=777_000)[0], "-", {}
    )
    bytes_identical = (
        single_sample["output"]
        == many_sample["output"]
        == many_sample_repeat["output"]
        == direct["output"]
    )
    assert bytes_identical
    assert many_sample_repeat["cached"] == "memory"  # affinity held

    # -- rejection at saturation ------------------------------------------
    tiny = start_server(shards=1, queue_size=2)
    try:
        saturation = run_load(
            "127.0.0.1",
            tiny.port,
            requests=150,
            concurrency=24,
            workload="cold",
            corpus_offset=500_000,
        )
        # Load was shed by 503 (rejection), never by error, and the
        # daemon still answers cleanly after the burst.
        post_burst = ServeClient(port=tiny.port).analyze(
            "predict", make_corpus(1, offset=888_000)[0]
        )
    finally:
        assert tiny.drain(timeout=30)
    assert saturation["errors"] == 0
    assert saturation["rejected"] > 0
    assert saturation["completed"] > 0
    assert post_burst["status"] == "ok"

    # -- SLO assertions ----------------------------------------------------
    for runs in (single_runs, many_runs):
        for workload, run in runs.items():
            assert run["errors"] == 0, (workload, run)
            assert run["completed"] + run["rejected"] == REQUESTS
            assert run["latency_ms"]["p99"] < 10_000, (workload, run)
    cold_ratio = (
        many_runs["cold"]["throughput_rps"]
        / single_runs["cold"]["throughput_rps"]
    )
    assert cold_ratio >= REQUIRED_COLD_RATIO, (
        f"cold throughput ratio {cold_ratio:.2f} below the "
        f"{REQUIRED_COLD_RATIO:.2f} bar for {CPU_COUNT} cores"
    )
    # Hot traffic is served from caches: it must not be slower than
    # doing the analysis fresh (generous 0.8 guard against jitter).
    assert (
        many_runs["hot"]["throughput_rps"]
        >= 0.8 * many_runs["cold"]["throughput_rps"]
    )

    # -- report ------------------------------------------------------------
    report = {
        "environment": {
            "cpu_count": CPU_COUNT,
            "shards_compared": [1, MANY_SHARDS],
            "requests_per_cell": REQUESTS,
            "concurrency": CONCURRENCY,
            "hot_set": HOT_SET,
        },
        "cells": {"shards_1": single_runs, f"shards_{MANY_SHARDS}": many_runs},
        "saturation": saturation,
        "slo": {
            "required_cold_ratio": round(REQUIRED_COLD_RATIO, 3),
            "cold_ratio": round(cold_ratio, 3),
            "full_gate_active": CPU_COUNT >= 4,
            "bytes_identical_across_tiers": bytes_identical,
        },
    }
    (results_dir / "BENCH_serve_load.json").write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n"
    )

    lines = [
        f"Serving-tier load: 1 vs {MANY_SHARDS} shards "
        f"({CPU_COUNT} cores, {REQUESTS} req/cell, c={CONCURRENCY})",
        "",
        f"{'cell':<16s} {'req/s':>9s} {'p50 ms':>9s} {'p99 ms':>9s} "
        f"{'rej%':>6s}",
    ]
    for shards_label, runs in report["cells"].items():
        for workload in WORKLOADS:
            run = runs[workload]
            lines.append(
                f"{shards_label + '/' + workload:<16s} "
                f"{run['throughput_rps']:>9.1f} "
                f"{run['latency_ms']['p50']:>9.2f} "
                f"{run['latency_ms']['p99']:>9.2f} "
                f"{100 * run['rejection_rate']:>5.1f}%"
            )
    lines.append("")
    lines.append(
        f"cold ratio {cold_ratio:.2f}x "
        f"(required {REQUIRED_COLD_RATIO:.2f}x, "
        f"full 3x gate {'ON' if CPU_COUNT >= 4 else 'off: <4 cores'})"
    )
    lines.append(
        f"saturation: {saturation['completed']} served, "
        f"{saturation['rejected']} rejected (503), "
        f"{saturation['errors']} errors"
    )
    emit(results_dir, "serve_load.txt", "\n".join(lines))
