"""Driving the diagnostics rules over a module and collecting a report.

The engine is a *consumer* of value range propagation: it runs the
predictor once (or accepts an existing :class:`ModulePrediction`) and
evaluates every rule against the converged results.  Findings flow into
the active tracer's event stream (kind ``diagnostic.finding``) so
``--trace`` sessions and ``--emit-metrics`` reports see them alongside
the engine's own events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import VRPConfig
from repro.core.interprocedural import ModulePrediction, analyse_module
from repro.diagnostics.findings import Finding, severity_rank
from repro.diagnostics.rules import all_findings, module_findings
from repro.ir import prepare_module
from repro.ir.function import Module
from repro.observability import events as obs_events
from repro.observability import tracer as tracing


@dataclass
class CheckReport:
    """All findings for one program, sorted most-severe first."""

    program: str
    findings: List[Finding] = field(default_factory=list)

    def by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def worst_severity(self) -> Optional[str]:
        return self.findings[0].severity if self.findings else None

    def fails(self, fail_on: str) -> bool:
        """Whether this report should fail a ``--fail-on`` gate."""
        if fail_on == "never":
            return False
        threshold = severity_rank(fail_on)
        return any(
            severity_rank(f.severity) <= threshold for f in self.findings
        )


def check_module(
    module: Module,
    prediction: ModulePrediction,
    program: str = "module",
) -> CheckReport:
    """Evaluate every diagnostics rule against an existing prediction."""
    tracer = tracing.active()
    trace = tracer if tracer.enabled else None
    findings: List[Finding] = []
    for name, function in module.functions.items():
        function_prediction = prediction.functions.get(name)
        if function_prediction is None:
            continue
        findings.extend(all_findings(function, function_prediction))
    findings.extend(module_findings(module))
    _attach_call_provenance(findings, prediction)
    findings.sort(key=Finding.sort_key)
    if trace is not None:
        for finding in findings:
            trace.emit(
                obs_events.DiagnosticFinding(
                    function=finding.function,
                    rule=finding.rule,
                    severity=finding.severity,
                    block=finding.block,
                    line=finding.line,
                    message=finding.message,
                )
            )
    return CheckReport(program=program, findings=findings)


def _attach_call_provenance(
    findings: List[Finding], prediction: ModulePrediction
) -> None:
    """Cite the call sites a summary-dependent proof rests on.

    A rule that proved something about an SSA name records it under
    ``evidence["operand"]``.  When the interprocedural driver marked
    that name as summary-tainted, the proof transitively depends on
    jump/return functions -- so the finding gains a
    ``call_provenance`` evidence chain plus ``related`` locations (one
    per contributing call site) for the text/JSON/SARIF renderers.
    """
    taint = getattr(prediction, "summary_taint", None)
    if not taint:
        return
    for finding in findings:
        operand = finding.evidence.get("operand")
        if not operand:
            continue
        chain = prediction.provenance_chain(finding.function, operand)
        if not chain:
            continue
        finding.evidence["call_provenance"] = chain
        related: List[dict] = []
        seen = set()
        for source in chain:
            if source["kind"] == "param":
                what = (
                    f"parameter '{source['param']}' of {source['function']} "
                    f"is seeded by this call site (merged range "
                    f"{source['range']})"
                )
            else:
                what = (
                    f"call result from {source['callee']} flows here "
                    f"(return range {source['range']})"
                )
            for site in source.get("sites", ()):
                key = (site["function"], site["block"], what)
                if key in seen:
                    continue
                seen.add(key)
                related.append(
                    {
                        "function": site["function"],
                        "block": site["block"],
                        "line": site["line"],
                        "message": what,
                    }
                )
        finding.related.extend(related)


def check_source(
    source: str,
    config: Optional[VRPConfig] = None,
    program: str = "module",
) -> CheckReport:
    """Compile, analyse and check toy-language source in one call."""
    from repro.lang import compile_source

    module = compile_source(source, module_name=program)
    return check_prepared(module, config=config, program=program)


def check_prepared(
    module: Module,
    config: Optional[VRPConfig] = None,
    program: str = "module",
) -> CheckReport:
    """Prepare (SSA) and analyse a lowered module, then run the rules."""
    config = config or VRPConfig()
    tracer = tracing.active()
    trace = tracer if tracer.enabled else None
    if trace is not None:
        with trace.span("check"):
            ssa_infos = prepare_module(module)
            prediction = analyse_module(module, ssa_infos, config=config)
            return check_module(module, prediction, program=program)
    ssa_infos = prepare_module(module)
    prediction = analyse_module(module, ssa_infos, config=config)
    return check_module(module, prediction, program=program)
