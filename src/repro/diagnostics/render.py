"""Text and JSON renderers for diagnostics reports.

The text form is for humans at a terminal (one line per finding plus a
summary); the JSON form is the full fidelity dump (findings with their
evidence payloads) for tooling that does not speak SARIF.
"""

from __future__ import annotations

import json

from repro.diagnostics.engine import CheckReport
from repro.diagnostics.findings import SEVERITIES


def render_text(report: CheckReport) -> str:
    """Human-readable rendering, one line per finding."""
    lines = []
    for finding in report.findings:
        location = f"{report.program}:{finding.line}" if finding.line else report.program
        lines.append(
            f"{location}: {finding.severity}: [{finding.rule}] "
            f"{finding.message} (in {finding.function}/{finding.block})"
        )
        for site in finding.related:
            where = f"{site['function']}/{site['block']}"
            if site.get("line"):
                where = f"{where}:{site['line']}"
            lines.append(f"    via {where}: {site['message']}")
    counts = report.by_severity()
    if report.findings:
        summary = ", ".join(
            f"{counts[severity]} {severity}(s)"
            for severity in SEVERITIES
            if severity in counts
        )
        lines.append(f"{len(report.findings)} finding(s): {summary}")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(report: CheckReport, indent: int = 1) -> str:
    """Full-fidelity JSON rendering (findings with evidence payloads)."""
    return json.dumps(
        {
            "program": report.program,
            "findings": [finding.as_dict() for finding in report.findings],
            "summary": report.by_severity(),
        },
        indent=indent,
        sort_keys=True,
    )
