"""Ablation: worklist ordering (paper §3.3 step 2).

"Experience has shown that preferring to select from the FlowWorkList
tends to cause information to be gathered more quickly and therefore
reduces the running time of the algorithm."  This bench measures both
orderings over the workload suite and checks that the results agree
(the fixed point is order-independent) while recording the work done.
"""

from benchmarks.conftest import emit
from repro.core import VRPConfig, VRPPredictor
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.workloads import all_workloads


def measure(prefer_flow: bool):
    total_evaluations = 0
    total_items = 0
    branch_probabilities = {}
    for workload in all_workloads():
        module = compile_source(workload.source, module_name=workload.name)
        infos = prepare_module(module)
        config = VRPConfig(prefer_flow_list=prefer_flow)
        prediction = VRPPredictor(config=config).predict_module(module, infos)
        total_evaluations += prediction.counters.expr_evaluations
        total_items += (
            prediction.counters.flow_edges_processed
            + prediction.counters.ssa_edges_processed
        )
        for key, probability in prediction.all_branches().items():
            branch_probabilities[(workload.name,) + key] = probability
    return total_evaluations, total_items, branch_probabilities


def test_worklist_ordering_ablation(benchmark, results_dir):
    flow_first = benchmark.pedantic(lambda: measure(True), rounds=1, iterations=1)
    ssa_first = measure(False)

    lines = ["Ablation: worklist ordering (paper section 3.3, step 2)", ""]
    lines.append(f"{'':22s} {'flow-first':>12s} {'ssa-first':>12s}")
    lines.append(
        f"{'expression evals':22s} {flow_first[0]:>12d} {ssa_first[0]:>12d}"
    )
    lines.append(
        f"{'worklist items':22s} {flow_first[1]:>12d} {ssa_first[1]:>12d}"
    )
    emit(results_dir, "ablation_worklist.txt", "\n".join(lines))

    # The fixed point itself is ordering-independent (within tolerance).
    diffs = [
        abs(flow_first[2][key] - ssa_first[2].get(key, -1.0))
        for key in flow_first[2]
    ]
    close = sum(1 for d in diffs if d < 0.05)
    assert close / len(diffs) > 0.9, "orderings disagree on the fixed point"
