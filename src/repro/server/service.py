"""Command execution for the serving daemon.

The service turns one validated request into the *deterministic
response core*: the one-shot CLI's stdout (``output``), an exit code,
and error/degradation flags.  Rendering goes through
:mod:`repro.rendering` -- the same functions the CLI uses -- so
byte-identity between ``repro submit`` and the one-shot commands holds
by construction rather than by test luck.

Robustness semantics:

* **Per-request timeout.**  Analysis runs under a deadline
  (``timeout_s``).  A run that exceeds it is abandoned (the thread is a
  daemon; the toy analyses finish in milliseconds, the deadline exists
  for adversarial inputs) and the request *degrades* instead of
  failing:

  - ``predict`` falls back to heuristics-only prediction -- the
    Ball-Larus chain needs no fixed point, so it always terminates
    promptly; every row is marked ``heuristic`` and the response is
    marked ``degraded: true``;
  - ``check`` degrades to an empty report (its rules are
    proofs-from-ranges only; without converged ranges there is nothing
    it can soundly claim), again with ``degraded: true``;
  - ``ranges``/``ir``/``run`` have no heuristic stand-in and answer
    with a timeout error.

* **Degraded results are never cached.**  Degradation reflects the
  moment (load, deadline), not the content address; caching one would
  serve a wrong-but-fast answer forever.

* **Deterministic errors are cached.**  A parse error is as
  content-addressed as a prediction.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import rendering
from repro.core import VRPConfig, VRPPredictor
from repro.server import protocol
from repro.server.cache import ResultCache, request_key
from repro.server.protocol import ProtocolError, validate_request
from repro.server.workers import WorkerPool


class AnalysisTimeout(Exception):
    """The analysis ran past the per-request deadline."""


def build_config(options: Dict[str, object]) -> VRPConfig:
    """The engine configuration a request's options describe.

    Mirrors the CLI's ``_config_from_args``: same option names, same
    defaults, so equal inputs produce equal configs -- and therefore
    equal cache keys -- through either front end.
    """
    return VRPConfig(
        max_ranges=int(options.get("max_ranges", 4)),
        symbolic=not options.get("numeric", False),
        derive_loops=not options.get("no_derive", False),
        track_arrays=bool(options.get("track_arrays", False)),
        context_depth=int(options.get("context_depth", 0)),
    )


def request_identity(
    body: dict,
    command: Optional[str] = None,
    base_options: Optional[Dict[str, object]] = None,
) -> Tuple[str, str, str, Dict[str, object], VRPConfig, str]:
    """Validate one request and compute its content address.

    Returns ``(command, source, name, merged_options, config, key)``.
    This is the single definition of "what identifies a request": the
    service uses it for cache lookups, and the sharded front end uses
    it to route -- the router hashing the *same* key the shard's cache
    stores under is what makes cache affinity work at all.  Raises
    :class:`ProtocolError` on malformed bodies.

    The display name only reaches the output of ``check`` (report
    headers name the program); other commands normalise it out of the
    key so renames do not shatter the cache.  ``trace`` never reaches
    the key (``canonical_options`` drops it): a traced request and an
    untraced one share one cache entry.
    """
    command, source, name, options = validate_request(body, command)
    merged = dict(base_options or {})
    merged.update(options)
    config = build_config(merged)
    key_name = name if command == "check" else "-"
    key = request_key(
        command, source, key_name,
        protocol.canonical_options(command, merged), config,
    )
    return command, source, name, merged, config, key


def _compile(source: str):
    from repro.ir import prepare_module
    from repro.lang import compile_source

    module = compile_source(source)
    ssa_infos = prepare_module(module)
    return module, ssa_infos


def _predict(
    source: str,
    options: Dict[str, object],
    config: VRPConfig,
    incremental_store=None,
):
    module, ssa_infos = _compile(source)
    if incremental_store is not None and not config.incremental:
        # ``incremental`` is behaviour-neutral (NEUTRAL_FIELDS), so the
        # copy shares the request's cache key; the replace only routes
        # the predictor through the summary store.
        import dataclasses

        config = dataclasses.replace(config, incremental=True)
    predictor = VRPPredictor(
        config=config,
        interprocedural=not options.get("intra", False),
        incremental_store=incremental_store,
    )
    prediction = predictor.predict_module(module, ssa_infos)
    return module, prediction


def _ok(command: str, output: str, exit_code: int = 0, degraded: bool = False) -> dict:
    return {
        "status": "ok",
        "command": command,
        "output": output,
        "exit_code": exit_code,
        "degraded": degraded,
        "error": None,
    }


def analyze_payload(
    command: str,
    source: str,
    name: str,
    options: Dict[str, object],
    config: Optional[VRPConfig] = None,
    incremental_store=None,
) -> dict:
    """Execute one command fully; returns the deterministic core.

    Compile and runtime errors come back as ``status: "error"``
    payloads (they are deterministic and cacheable); only unexpected
    exceptions propagate.  ``incremental_store`` (an
    :class:`repro.incremental.IncrementalStore`) lets whole-file cache
    misses replay unchanged functions from per-function summaries --
    output stays byte-identical by the incremental contract
    (``docs/INCREMENTAL.md``), so the results *are* cacheable.
    """
    from repro.lang import LexError, LoweringError, ParseError
    from repro.profiling import run_module
    from repro.profiling.interpreter import InterpreterError

    config = config if config is not None else build_config(options)
    try:
        if command == "predict":
            _, prediction = _predict(source, options, config, incremental_store)
            return _ok(
                command,
                rendering.branch_table(
                    prediction.all_branches(), prediction.heuristic_branches()
                ),
            )
        if command == "ranges":
            _, prediction = _predict(source, options, config, incremental_store)
            return _ok(command, rendering.ranges_listing(prediction))
        if command == "ir":
            module, _ = _compile(source)
            return _ok(command, rendering.ir_dump(module))
        if command == "run":
            module, _ = _compile(source)
            result = run_module(
                module,
                args=[int(v) for v in options.get("args", [])],
                input_values=[int(v) for v in options.get("inputs", [])],
                max_steps=int(options.get("max_steps", 5_000_000)),
            )
            return _ok(
                command,
                rendering.run_report(
                    result, profile=bool(options.get("profile", False))
                ),
            )
        if command == "check":
            module, prediction = _predict(source, options, config, incremental_store)
            program = name if name != "-" else module.name
            report, rendered = _render_check(module, prediction, program, options)
            return _ok(
                command,
                rendered,
                exit_code=1 if report.fails(str(options.get("fail_on", "error"))) else 0,
            )
        raise ProtocolError(f"unknown command {command!r}")
    except (LexError, ParseError, LoweringError, InterpreterError) as error:
        return protocol.error_response(command, str(error))


def _render_check(module, prediction, program: str, options: Dict[str, object]):
    from repro.diagnostics import (
        check_module,
        render_json,
        render_sarif,
        render_text,
    )

    report = check_module(module, prediction, program=program)
    fmt = str(options.get("format", "text"))
    if fmt == "json":
        rendered = render_json(report)
    elif fmt == "sarif":
        rendered = render_sarif(report, artifact_uri=program)
    else:
        rendered = render_text(report)
    return report, rendered + "\n"


def degraded_payload(
    command: str,
    source: str,
    name: str,
    options: Dict[str, object],
    reason: str = "timeout",
) -> dict:
    """The heuristics-only stand-in served after a timeout.

    ``reason`` travels on the payload as ``degraded_reason`` so clients
    (``repro submit --verbose``) can report *why* the answer degraded.
    Degraded payloads are never cached, so the field cannot leak into a
    cached fresh result.
    """
    from repro.heuristics import BallLarusPredictor
    from repro.lang import LexError, LoweringError, ParseError

    try:
        module, _ = _compile(source)
    except (LexError, ParseError, LoweringError) as error:
        return protocol.error_response(command, str(error))
    if command == "predict":
        predictor = BallLarusPredictor()
        branches: Dict[tuple, float] = {}
        for function_name, function in module.functions.items():
            for label, probability in predictor.predict_function(function).items():
                branches[(function_name, label)] = probability
        output = rendering.branch_table(branches, set(branches))
        return dict(_ok(command, output, degraded=True), degraded_reason=reason)
    if command == "check":
        from repro.diagnostics.engine import CheckReport

        program = name if name != "-" else module.name
        report = CheckReport(program=program)
        rendered = _render_empty_check(report, program, options)
        return dict(_ok(command, rendered, degraded=True), degraded_reason=reason)
    return dict(
        protocol.error_response(command, "analysis timed out"),
        degraded=True,
        degraded_reason=reason,
    )


def _render_empty_check(report, program: str, options: Dict[str, object]) -> str:
    from repro.diagnostics import render_json, render_sarif, render_text

    fmt = str(options.get("format", "text"))
    if fmt == "json":
        return render_json(report) + "\n"
    if fmt == "sarif":
        return render_sarif(report, artifact_uri=program) + "\n"
    return render_text(report) + "\n"


def _run_with_deadline(fn, timeout_s: Optional[float]):
    """Run ``fn`` under a wall-clock deadline.

    The body runs in a daemon helper thread; on deadline the thread is
    abandoned (it finishes eventually and its result is discarded) and
    :class:`AnalysisTimeout` is raised.  ``None`` disables the deadline
    and costs nothing.
    """
    if timeout_s is None:
        return fn()
    box: Dict[str, object] = {}
    done = threading.Event()

    def runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as error:  # noqa: BLE001
            box["error"] = error
        finally:
            done.set()

    thread = threading.Thread(target=runner, daemon=True, name="repro-analysis")
    thread.start()
    if not done.wait(timeout_s):
        raise AnalysisTimeout(f"analysis exceeded {timeout_s}s")
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["value"]


class AnalysisService:
    """Validated requests in, deterministic (and cached) responses out."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        base_options: Optional[Dict[str, object]] = None,
        incremental_store=None,
    ):
        self.cache = cache if cache is not None else ResultCache()
        self.timeout_s = timeout_s
        #: Server-wide option defaults, overridden per request.
        self.base_options = dict(base_options or {})
        #: Optional per-function summary store consulted on whole-file
        #: cache misses (:mod:`repro.incremental`).
        self.incremental_store = incremental_store

    # -- single requests -----------------------------------------------------

    def execute(
        self,
        body: dict,
        command: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        """One request -> one response.  Raises ProtocolError on bad input.

        ``trace_id`` (minted or adopted by the HTTP layer) enters the
        ambient trace context for the duration of the request, so
        engine spans and the metrics ``tracing`` key correlate with the
        access log.  It runs here -- on the *worker* thread -- because
        :class:`contextvars.ContextVar` values do not cross the pool's
        thread boundary on their own.
        """
        from repro.observability import context as tracecontext

        if trace_id is None:
            return self._execute(body, command)
        with tracecontext.use(tracecontext.mint(trace_id)):
            return self._execute(body, command)

    def _execute(self, body: dict, command: Optional[str] = None) -> dict:
        from repro.observability import chrometrace
        from repro.observability import context as tracecontext
        from repro.observability import tracer as tracing

        command, source, name, merged, config, key = request_identity(
            body, command, self.base_options
        )
        started = time.perf_counter()
        want_trace = bool(merged.get("trace"))
        payload, tier = self.cache.get(key)
        tracer = tracing.Tracer(record_events=False) if want_trace else None
        if payload is None:
            store = self.incremental_store

            def compute() -> dict:
                if tracer is None:
                    return analyze_payload(
                        command, source, name, merged, config, store
                    )
                # The tracer enters the context *inside* the closure:
                # under a deadline the closure runs on a helper thread
                # that does not inherit this thread's context vars.
                with tracing.use(tracer), tracer.span("request"):
                    return analyze_payload(
                        command, source, name, merged, config, store
                    )

            try:
                payload = _run_with_deadline(compute, self.timeout_s)
            except AnalysisTimeout:
                payload = degraded_payload(
                    command, source, name, merged,
                    reason=f"deadline: analysis exceeded {self.timeout_s}s",
                )
            if not payload.get("degraded"):
                self.cache.put(key, payload)
        response = dict(payload)
        response["key"] = key
        response["cached"] = tier
        response["elapsed_ms"] = round((time.perf_counter() - started) * 1000, 3)
        if want_trace:
            # tuple(): on a timeout the abandoned helper thread may
            # still be appending spans while we serialise.
            response["trace"] = chrometrace.serialize_spans(
                tuple(tracer.spans) if tracer is not None else ()
            )
            current_id = tracecontext.current_trace_id()
            if current_id is not None:
                response["trace_id"] = current_id
        return response

    def execute_item(
        self,
        body: dict,
        command: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        """Like :meth:`execute`, but protocol errors become responses.

        Batch items use this so one malformed item fails *itself*, not
        the whole batch.
        """
        try:
            return self.execute(body, command, trace_id=trace_id)
        except ProtocolError as error:
            response = protocol.error_response(
                body.get("command") if isinstance(body, dict) else None,
                str(error),
            )
            response.update(key=None, cached=None, elapsed_ms=0.0)
            return response

    # -- micro-batched requests ----------------------------------------------

    def execute_batch(
        self,
        items: Sequence[dict],
        pool: Optional[WorkerPool] = None,
        trace_id: Optional[str] = None,
    ) -> List[dict]:
        """A multi-file submission, fanned out item-per-job.

        With a pool the batch enqueues atomically (or raises
        :class:`repro.server.workers.QueueFullError` as a unit) and the
        items run on the analysis workers, interleaved with other
        traffic; results come back in submission order regardless of
        completion order -- the serving-shape analogue of the
        ``--jobs N`` fan-out's determinism contract.
        """
        if pool is not None and len(items) > 1:
            futures = pool.submit_many(
                [
                    (self.execute_item, (item,), {"trace_id": trace_id})
                    for item in items
                ]
            )
            return [future.result() for future in futures]
        return [self.execute_item(item, trace_id=trace_id) for item in items]
