"""The incremental driver: byte-identity, replay, and the exact guard."""

import pytest

import repro.incremental.driver as driver_mod
from repro.core.config import VRPConfig
from repro.core.interprocedural import analyse_module
from repro.incremental.driver import analyse_module_incremental
from repro.incremental.store import IncrementalStore

from tests.incremental.helpers import MULTI_COMPONENT, build, rendered


def run_incremental(source, store, config=None):
    module, infos = build(source)
    return analyse_module_incremental(module, infos, store, config=config)


class TestByteIdentity:
    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_first_run_matches_cold(self, depth):
        config = VRPConfig(context_depth=depth)
        module, infos = build(MULTI_COMPONENT)
        cold = analyse_module(module, infos, config=config)
        warm_module, warm_infos = build(MULTI_COMPONENT)
        incremental, outcome = analyse_module_incremental(
            warm_module, warm_infos, IncrementalStore(), config=config
        )
        assert rendered(incremental) == rendered(cold)
        assert outcome.replayed == ()
        assert set(outcome.reanalyzed) == set(module.functions)

    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_replay_matches_cold(self, depth):
        config = VRPConfig(context_depth=depth)
        store = IncrementalStore()
        first, _ = run_incremental(MULTI_COMPONENT, store, config)
        second, outcome = run_incremental(MULTI_COMPONENT, store, config)
        assert rendered(second) == rendered(first)
        assert outcome.reanalyzed == ()
        assert outcome.components_replayed == 3
        assert outcome.store_hits == 3

    def test_replay_reproduces_counters_at_depth_zero(self):
        # At k=0 even the work-count telemetry is part of the contract;
        # at k>=1 the context memo trajectory differs by design.  The
        # summary-cache numbers tally into the perf layer's global
        # record, which VRPPredictor resets per run (the CLI surface),
        # so the comparison goes through the predictor.
        from repro.core import VRPPredictor

        module, infos = build(MULTI_COMPONENT)
        cold = VRPPredictor().predict_module(module, infos)
        store = IncrementalStore()
        config = VRPConfig(incremental=True)

        def warm_run():
            warm_module, warm_infos = build(MULTI_COMPONENT)
            return VRPPredictor(
                config=config, incremental_store=store
            ).predict_module(warm_module, warm_infos)

        first = warm_run()
        replayed = warm_run()
        for prediction in (first, replayed):
            assert prediction.counters.as_dict() == cold.counters.as_dict()
            assert prediction.rounds == cold.rounds
            assert prediction.interprocedural == cold.interprocedural

    def test_disk_tier_round_trip_matches_cold(self, tmp_path):
        first, _ = run_incremental(
            MULTI_COMPONENT, IncrementalStore(disk_dir=str(tmp_path))
        )
        # A fresh process over the same directory: memory tier cold,
        # every component replayed from disk through JSON.
        fresh = IncrementalStore(disk_dir=str(tmp_path))
        second, outcome = run_incremental(MULTI_COMPONENT, fresh)
        assert rendered(second) == rendered(first)
        assert outcome.reanalyzed == ()
        assert fresh.stats()["disk"]["hits"] == 3


class TestInvalidation:
    def test_edit_reanalyzes_exactly_the_component(self):
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store)
        edited = MULTI_COMPONENT.replace("return v * 2;", "return v * 3;")
        module, infos = build(edited)
        cold = analyse_module(module, infos)
        warm_module, warm_infos = build(edited)
        prediction, outcome = analyse_module_incremental(
            warm_module, warm_infos, store
        )
        # leaf was edited; outer depends on its return range.  The
        # {helper, apply, main} and {island} components replay.
        assert set(outcome.reanalyzed) == {"leaf", "outer"}
        assert set(outcome.replayed) == {"helper", "apply", "main", "island"}
        assert rendered(prediction) == rendered(cold)

    def test_line_shift_replays_everything(self):
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store)
        shifted = "\n// a new header comment\n\n" + MULTI_COMPONENT
        _, outcome = run_incremental(shifted, store)
        assert outcome.reanalyzed == ()
        assert len(outcome.replayed) == 6

    def test_outcome_metrics_document(self):
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store)
        edited = MULTI_COMPONENT.replace("acc * k", "acc + k")
        _, outcome = run_incremental(edited, store)
        document = outcome.as_metrics()
        assert document == {
            "reanalyzed": 1,
            "replayed": 5,
            "components": {"reanalyzed": 1, "replayed": 2},
            "store": {"hits": 2, "misses": 1, "evictions": 0},
        }


class TestGuards:
    def test_rename_keeps_the_address_but_reanalyzes(self):
        # Renaming a local keeps the semantic fingerprint (the store
        # address) but rendered output mentions SSA names, so the exact
        # guard must force reanalysis -- and refresh the entry in place.
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store)
        renamed = MULTI_COMPONENT.replace("var acc = 1;", "var zed = 1;")
        renamed = renamed.replace("acc * k", "zed * k").replace(
            "acc = acc", "zed = zed"
        ).replace("return acc;", "return zed;")
        module, infos = build(renamed)
        cold = analyse_module(module, infos)
        warm_module, warm_infos = build(renamed)
        prediction, outcome = analyse_module_incremental(
            warm_module, warm_infos, store
        )
        assert set(outcome.reanalyzed) == {"island"}
        assert rendered(prediction) == rendered(cold)
        # The refreshed entry replays on the next recheck.
        _, again = run_incremental(renamed, store)
        assert again.reanalyzed == ()

    def test_payload_version_mismatch_is_a_miss(self, monkeypatch):
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store)
        monkeypatch.setattr(driver_mod, "PAYLOAD_VERSION", 2)
        _, outcome = run_incremental(MULTI_COMPONENT, store)
        assert outcome.replayed == ()
        assert len(outcome.reanalyzed) == 6

    def test_config_change_misses_the_store(self):
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store, VRPConfig())
        _, outcome = run_incremental(
            MULTI_COMPONENT, store, VRPConfig(context_depth=1)
        )
        assert outcome.replayed == ()

    def test_corrupt_payload_falls_back_to_analysis(self):
        store = IncrementalStore()
        run_incremental(MULTI_COMPONENT, store)
        # Wreck every stored payload behind the driver's back.
        for key in list(store._memory):
            store._memory[key] = {"v": 1, "garbage": True}
        prediction, outcome = run_incremental(MULTI_COMPONENT, store)
        assert outcome.replayed == ()
        module, infos = build(MULTI_COMPONENT)
        assert rendered(prediction) == rendered(analyse_module(module, infos))

    def test_entry_seed_is_part_of_the_address(self):
        from repro.core.rangeset import RangeSet

        store = IncrementalStore()
        module, infos = build(MULTI_COMPONENT)
        analyse_module_incremental(module, infos, store)
        seeded_module, seeded_infos = build(MULTI_COMPONENT)
        _, outcome = analyse_module_incremental(
            seeded_module,
            seeded_infos,
            store,
            entry_param_ranges={"n": RangeSet.span(0, 10)},
        )
        # Only main's component re-runs: the seed reaches main alone.
        assert set(outcome.reanalyzed) == {"helper", "apply", "main"}
        assert set(outcome.replayed) == {"leaf", "outer", "island"}
