"""Range refinement under branch assertions (Pi nodes).

On the true edge of ``branch x < B`` the asserted variable's range is the
conditional distribution of its old range given ``x < B``: each
constituent range is clipped against the bound, kept mass is
renormalised.  When the source range is ⊥ the assertion *creates*
information -- a half-open range like ``[-inf : B-1]`` -- which is how
one-sided facts such as ``n > 0`` enter the analysis.

Bounds may be numeric constants or symbolic (the other operand's SSA
name), giving the paper's ``x > y + 2``-style symbolic ranges.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.bounds import Bound, NEG_INF, POS_INF
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, DEFAULT_MAX_RANGES, RangeSet, TOP


def refine_set(
    src: RangeSet,
    op: str,
    bound: Bound,
    max_ranges: int = DEFAULT_MAX_RANGES,
) -> RangeSet:
    """The range of a value drawn from ``src`` given that ``value op bound``.

    ⊤ stays ⊤ (the operand has not been evaluated yet); ⊥ becomes the
    pure predicate range; a contradiction (no value can satisfy the
    assertion) yields ⊥ -- the edge is then effectively never taken.
    """
    if src.is_top:
        return TOP
    if src.is_bottom:
        predicate = _predicate_range(op, bound)
        if predicate is None:
            return BOTTOM
        return RangeSet.from_ranges([predicate])
    kept: List[StridedRange] = []
    for r in src.ranges:
        clipped, fraction = _refine_range(r, op, bound)
        if clipped is not None and fraction > 0:
            kept.append(clipped.with_probability(r.probability * fraction))
    if not kept:
        return BOTTOM
    return RangeSet.from_ranges(kept, max_ranges=max_ranges, renormalise=True)


def _predicate_range(op: str, bound: Bound) -> Optional[StridedRange]:
    """The range implied by the predicate alone (source unknown)."""
    if op == "lt":
        hi = bound.add_const(-1)
        return StridedRange(1.0, Bound.number(NEG_INF), hi, 1)
    if op == "le":
        return StridedRange(1.0, Bound.number(NEG_INF), bound, 1)
    if op == "gt":
        lo = bound.add_const(1)
        return StridedRange(1.0, lo, Bound.number(POS_INF), 1)
    if op == "ge":
        return StridedRange(1.0, bound, Bound.number(POS_INF), 1)
    if op == "eq":
        return StridedRange(1.0, bound, bound, 0)
    if op == "ne":
        return None  # a hole is not representable; stay ⊥
    raise ValueError(f"unknown assertion relop {op!r}")


def _refine_range(
    r: StridedRange, op: str, bound: Bound
) -> Tuple[Optional[StridedRange], float]:
    """Clip one range against the predicate.

    Returns ``(kept_range, kept_fraction)``; ``(None, 0)`` when nothing
    survives.  Incomparable bases keep the range unchanged (no weight
    adjustment) except for ``eq``, which always pins the value.
    """
    if op == "eq":
        return _refine_eq(r, bound)
    if op == "ne":
        return _refine_ne(r, bound)
    if op in ("lt", "le"):
        limit = bound.add_const(-1) if op == "lt" else bound
        return _clip_upper(r, limit)
    if op in ("gt", "ge"):
        limit = bound.add_const(1) if op == "gt" else bound
        return _clip_lower(r, limit)
    raise ValueError(f"unknown assertion relop {op!r}")


def _refine_eq(r: StridedRange, bound: Bound) -> Tuple[Optional[StridedRange], float]:
    if not _may_contain(r, bound):
        return None, 0.0
    pinned = StridedRange(1.0, bound, bound, 0)
    count = r.count()
    fraction = 1.0 / count if count else 1.0
    return pinned, fraction


def _refine_ne(r: StridedRange, bound: Bound) -> Tuple[Optional[StridedRange], float]:
    if r.is_single():
        if r.lo == bound:
            return None, 0.0
        return r, 1.0
    count = r.count()
    if not _may_contain(r, bound):
        return r, 1.0
    stride = r.stride if r.stride else 1
    lo, hi = r.lo, r.hi
    if lo == bound:
        lo = lo.add_const(stride)
    elif hi == bound:
        hi = hi.add_const(-stride)
    order = lo.compare(hi)
    if order is not None and order > 0:
        return None, 0.0
    fraction = (count - 1) / count if count else 1.0
    return StridedRange(1.0, lo, hi, r.stride), fraction


def _may_contain(r: StridedRange, bound: Bound) -> bool:
    """False only when the range provably excludes the bound."""
    below = bound.compare(r.lo)
    if below is not None and below < 0:
        return False
    above = bound.compare(r.hi)
    if above is not None and above > 0:
        return False
    # Progression membership when the phase is checkable.
    gap = r.lo.distance(bound)
    if gap is not None and not math.isinf(gap) and r.stride > 1:
        if int(gap) % r.stride != 0:
            return False
    return True


def _clip_upper(r: StridedRange, limit: Bound) -> Tuple[Optional[StridedRange], float]:
    """Keep values <= limit."""
    order_hi = r.hi.compare(limit)
    if order_hi is not None and order_hi <= 0:
        return r, 1.0  # entirely below the limit
    order_lo = r.lo.compare(limit)
    if order_lo is None or (order_hi is None):
        return r, 1.0  # incomparable basis: leave unchanged
    if order_lo > 0:
        return None, 0.0  # entirely above the limit
    new_hi = _snap_down(r, limit)
    if new_hi is None:
        return None, 0.0
    clipped = StridedRange(1.0, r.lo, new_hi, r.stride)
    return clipped, _kept_fraction(r, clipped)


def _clip_lower(r: StridedRange, limit: Bound) -> Tuple[Optional[StridedRange], float]:
    """Keep values >= limit."""
    order_lo = r.lo.compare(limit)
    if order_lo is not None and order_lo >= 0:
        return r, 1.0
    order_hi = r.hi.compare(limit)
    if order_hi is None or order_lo is None:
        return r, 1.0
    if order_hi < 0:
        return None, 0.0
    new_lo = _snap_up(r, limit)
    if new_lo is None:
        return None, 0.0
    clipped = StridedRange(1.0, new_lo, r.hi, r.stride)
    return clipped, _kept_fraction(r, clipped)


def _snap_down(r: StridedRange, limit: Bound) -> Optional[Bound]:
    """Largest progression point <= limit (phase-preserving when possible)."""
    gap = r.lo.distance(limit)
    if gap is None or math.isinf(gap):
        return limit
    if gap < 0:
        return None
    stride = r.stride if r.stride else 1
    aligned = int(gap) // stride * stride
    return r.lo.add_const(aligned)


def _snap_up(r: StridedRange, limit: Bound) -> Optional[Bound]:
    """Smallest progression point >= limit (phase-preserving when possible)."""
    gap = r.lo.distance(limit)
    if gap is None or math.isinf(gap):
        return limit
    if gap <= 0:
        return r.lo
    stride = r.stride if r.stride else 1
    aligned = (int(gap) + stride - 1) // stride * stride
    candidate = r.lo.add_const(aligned)
    order = candidate.compare(r.hi)
    if order is not None and order > 0:
        return None
    return candidate


def _kept_fraction(original: StridedRange, clipped: StridedRange) -> float:
    count_before = original.count()
    count_after = clipped.count()
    if count_before and count_after:
        return min(1.0, count_after / count_before)
    width_before = original.width()
    width_after = clipped.width()
    if (
        width_before is not None
        and width_after is not None
        and not math.isinf(width_before)
        and width_before > 0
    ):
        return min(1.0, float(width_after) / float(width_before))
    return 1.0
