"""Ablation: loop-carried derivation (paper §3.6).

Derivation exists so loops are not executed during propagation.  With it
disabled the engine brute-forces every loop (bounded by widening); this
bench shows the work blow-up derivation avoids, on programs whose loops
derive cleanly.
"""

from benchmarks.conftest import emit
from repro.core import VRPConfig, VRPPredictor
from repro.ir import prepare_module
from repro.lang import compile_source

LOOPY = """
func main(n) {
  var total = 0;
  for (a = 0; a < 200; a = a + 1) { total = total + 1; }
  for (b = 0; b < 400; b = b + 2) { total = total + b; }
  for (c = 500; c > 0; c = c - 5) { total = total + 2; }
  for (d = 0; d < 100; d = d + 1) {
    for (e = 0; e < 50; e = e + 1) { total = total + 1; }
  }
  return total;
}
"""


def measure(derive: bool):
    module = compile_source(LOOPY)
    infos = prepare_module(module)
    predictor = VRPPredictor(config=VRPConfig(derive_loops=derive))
    prediction = predictor.predict_module(module, infos)
    return prediction


def test_derivation_ablation(benchmark, results_dir):
    with_derivation = benchmark.pedantic(lambda: measure(True), rounds=1, iterations=1)
    without_derivation = measure(False)

    on = with_derivation.counters
    off = without_derivation.counters
    lines = ["Ablation: loop-carried derivation (paper section 3.6)", ""]
    lines.append(f"{'':24s} {'derivation ON':>14s} {'derivation OFF':>15s}")
    lines.append(
        f"{'expression evaluations':24s} {on.expr_evaluations:>14d} {off.expr_evaluations:>15d}"
    )
    lines.append(
        f"{'sub-operations':24s} {on.sub_operations:>14d} {off.sub_operations:>15d}"
    )
    lines.append(
        f"{'derivations succeeded':24s} {on.derivations_succeeded:>14d} {off.derivations_succeeded:>15d}"
    )
    lines.append("")
    factor = off.expr_evaluations / max(1, on.expr_evaluations)
    lines.append(f"work blow-up without derivation: {factor:.1f}x")
    emit(results_dir, "ablation_derivation.txt", "\n".join(lines))

    assert on.derivations_succeeded >= 5
    assert off.expr_evaluations > on.expr_evaluations

    # Accuracy: derived loop bounds are exact; brute force + widening
    # must converge to similar probabilities on these clean loops.
    for (func, label), p_on in with_derivation.all_branches().items():
        p_off = without_derivation.branch_probability(func, label)
        assert p_off is not None
        assert abs(p_on - p_off) < 0.1, (func, label, p_on, p_off)
