"""§6 code layout and trace formation, measured across the workloads.

For every workload: lay out main() with Pettis-Hansen chaining driven by
*predicted* edge frequencies, form traces the same way, then measure
against the real (ref-input) execution:

* fall-through fraction, source order vs predicted layout;
* fraction of dynamic transfers staying inside a statically chosen trace.

The paper's claim is qualitative ("this approach can consistently make
an I-cache appear 2 or 3 times as large"); the reproduction asserts the
aggregate improvement, which is the part prediction quality controls.
"""

from benchmarks.conftest import emit
from repro.core import VRPPredictor
from repro.opt import (
    chain_layout,
    dynamic_trace_coverage,
    fallthrough_fraction,
    form_traces,
)
from repro.profiling import run_module


def measure(prepared_workloads):
    rows = []
    for prepared in prepared_workloads:
        workload = prepared.workload
        module = prepared.module
        function = module.function("main")
        module_prediction = VRPPredictor().predict_module(
            module, prepared.ssa_infos
        )
        prediction = module_prediction.functions["main"]

        run = run_module(
            module,
            args=workload.ref_args,
            input_values=workload.ref_inputs,
            max_steps=workload.max_steps,
        )
        dynamic = {
            (src, dst): count
            for (fn, src, dst), count in run.edge_counts.items()
            if fn == "main"
        }
        original = fallthrough_fraction(list(function.blocks), dynamic)
        optimised = fallthrough_fraction(
            chain_layout(function, prediction.edge_frequency), dynamic
        )
        traces = form_traces(function, prediction)
        coverage = dynamic_trace_coverage(traces, dynamic)
        rows.append((workload.name, original, optimised, coverage))
    return rows


def test_layout_and_traces(benchmark, results_dir, prepared_fp_suite, prepared_int_suite):
    rows = benchmark.pedantic(
        lambda: measure(prepared_fp_suite + prepared_int_suite), rounds=1, iterations=1
    )
    lines = ["Code layout and trace selection from static predictions", ""]
    lines.append(
        f"{'workload':>12s} {'fallthru orig':>14s} {'fallthru VRP':>13s} {'trace cover':>12s}"
    )
    for name, original, optimised, coverage in rows:
        lines.append(
            f"{name:>12s} {original:>13.1%} {optimised:>12.1%} {coverage:>11.1%}"
        )
    mean_original = sum(r[1] for r in rows) / len(rows)
    mean_optimised = sum(r[2] for r in rows) / len(rows)
    mean_coverage = sum(r[3] for r in rows) / len(rows)
    lines.append("")
    lines.append(
        f"{'mean':>12s} {mean_original:>13.1%} {mean_optimised:>12.1%} {mean_coverage:>11.1%}"
    )
    emit(results_dir, "layout_traces.txt", "\n".join(lines))

    # Predicted layout must clearly beat source order on average, and
    # trace selection must capture the majority of dynamic transfers.
    assert mean_optimised > mean_original + 0.10
    assert mean_coverage > 0.5
    # Layout should not regress on (almost) any individual workload.
    regressions = [name for name, orig, opt, _ in rows if opt + 0.02 < orig]
    assert len(regressions) <= 2, regressions
