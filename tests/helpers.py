"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import VRPConfig
from repro.core.propagation import FunctionPrediction, analyse_function
from repro.core.rangeset import RangeSet
from repro.ir import prepare_for_analysis, prepare_module
from repro.ir.function import Function, Module
from repro.ir.ssa import SSAInfo
from repro.lang import compile_source

PAPER_EXAMPLE = """
func main(n) {
  var y = 0;
  for (x = 0; x < 10; x = x + 1) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { n = n + 1; }
  }
  return n;
}
"""


def compile_and_prepare(source: str) -> Tuple[Module, Dict[str, SSAInfo]]:
    """Compile source and canonicalise every function into SSA form."""
    module = compile_source(source)
    infos = prepare_module(module)
    return module, infos


def prepare_single(source: str, name: str = "main") -> Tuple[Function, SSAInfo]:
    """Compile a one-function program and prepare it."""
    module = compile_source(source)
    function = module.function(name)
    info = prepare_for_analysis(function)
    return function, info


def analyse(
    source: str,
    name: str = "main",
    config: Optional[VRPConfig] = None,
    param_ranges: Optional[Dict[str, RangeSet]] = None,
) -> FunctionPrediction:
    """Compile, prepare, and run intraprocedural VRP on one function."""
    function, info = prepare_single(source, name)
    return analyse_function(function, info, config=config, param_ranges=param_ranges)


def value_of_variable(prediction: FunctionPrediction, prefix: str) -> Dict[str, RangeSet]:
    """All SSA versions of a source variable, by full SSA name."""
    return {
        name: rangeset
        for name, rangeset in prediction.values.items()
        if name.startswith(prefix + ".")
    }
