"""Range sets: the lattice values of value range propagation.

A :class:`RangeSet` is ⊤ (undetermined), ⊥ (unpredictable), or a set of
weighted :class:`~repro.core.ranges.StridedRange` whose probabilities sum
to one.  Sets are capped at a configurable number of ranges (the paper
uses four) by merging the pair whose hull loses the least information.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.bounds import Bound, bound_max, bound_min, Number
from repro.core.perf.context import is_active as _perf_active
from repro.core.ranges import StridedRange

# Probabilities below this are treated as zero and dropped.
PROB_EPSILON = 1e-12

DEFAULT_MAX_RANGES = 4

# Memoization hooks, installed by repro.core.perf.memo when the perf
# layer is loaded; None means "call the plain builders below".
_FROM_RANGES_MEMO = None
_MERGE_WEIGHTED_MEMO = None


class RangeSet:
    """An immutable lattice value: ⊤, ⊥, or weighted ranges summing to 1."""

    __slots__ = ("_kind", "_ranges", "_hash", "_hull", "_symbols")

    _TOP_KIND = "top"
    _BOTTOM_KIND = "bottom"
    _SET_KIND = "set"

    def __init__(self, kind: str, ranges: Tuple[StridedRange, ...] = ()):
        self._kind = kind
        self._ranges = ranges
        self._hash = None
        self._hull = False  # False = not computed (None is a valid hull)
        self._symbols = None

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def top() -> "RangeSet":
        return TOP

    @staticmethod
    def bottom() -> "RangeSet":
        return BOTTOM

    @staticmethod
    def from_ranges(
        ranges: Iterable[StridedRange],
        max_ranges: int = DEFAULT_MAX_RANGES,
        renormalise: bool = False,
    ) -> "RangeSet":
        """Build a set: drops zero-probability ranges, folds duplicates,
        optionally rescales probabilities to sum 1, and compacts to the cap.
        Returns ⊥ when nothing remains or compaction fails."""
        if _FROM_RANGES_MEMO is not None and _perf_active():
            return _FROM_RANGES_MEMO(tuple(ranges), max_ranges, renormalise)
        return _build_set(ranges, max_ranges, renormalise)

    @staticmethod
    def constant(value: Number) -> "RangeSet":
        return RangeSet.from_ranges([StridedRange.single(1.0, value)])

    @staticmethod
    def span(lo: Number, hi: Number, stride: int = 1) -> "RangeSet":
        return RangeSet.from_ranges([StridedRange.span(1.0, lo, hi, stride)])

    @staticmethod
    def symbol(name: str, offset: Number = 0) -> "RangeSet":
        return RangeSet.from_ranges([StridedRange.symbol(1.0, name, offset)])

    @staticmethod
    def boolean(probability_true: float) -> "RangeSet":
        """The 0/1 distribution of a comparison with P(true) given."""
        probability_true = min(1.0, max(0.0, probability_true))
        return RangeSet.from_ranges(
            [
                StridedRange.single(probability_true, 1),
                StridedRange.single(1.0 - probability_true, 0),
            ]
        )

    # -- lattice queries ----------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self._kind == RangeSet._TOP_KIND

    @property
    def is_bottom(self) -> bool:
        return self._kind == RangeSet._BOTTOM_KIND

    @property
    def is_set(self) -> bool:
        return self._kind == RangeSet._SET_KIND

    @property
    def ranges(self) -> Tuple[StridedRange, ...]:
        return self._ranges

    # -- value queries ----------------------------------------------------------

    def constant_value(self) -> Optional[Number]:
        """The single numeric value this set certainly holds, if any.

        A final range like ``1[7:7:0]`` means the variable is the constant
        7 for every execution (the paper's constant-propagation subsumption).
        """
        if not self.is_set or len(self._ranges) != 1:
            return None
        only = self._ranges[0]
        if only.is_single() and only.lo.is_numeric() and only.lo.is_finite():
            return only.lo.offset
        return None

    def copy_symbol(self) -> Optional[str]:
        """The variable this set is certainly a copy of, if any.

        A final range like ``1[y:y:0]`` means the variable is a copy of
        ``y`` (the paper's copy-propagation subsumption).
        """
        if not self.is_set or len(self._ranges) != 1:
            return None
        only = self._ranges[0]
        if only.is_single() and only.lo.symbol is not None and only.lo.offset == 0:
            return only.lo.symbol
        return None

    def symbols(self) -> set:
        if self._symbols is None:
            out: set = set()
            for r in self._ranges:
                out |= r.symbols()
            self._symbols = out
        return self._symbols

    def is_numeric(self) -> bool:
        return self.is_set and all(r.is_numeric() for r in self._ranges)

    def hull(self) -> Optional[StridedRange]:
        """A single range covering the whole set (probability 1), or None."""
        if self._hull is not False:
            return self._hull
        if not self.is_set:
            return None
        merged = self._ranges[0].with_probability(1.0)
        for other in self._ranges[1:]:
            hulled = _hull_pair(merged, other.with_probability(1.0))
            if hulled is None:
                self._hull = None
                return None
            merged = hulled.with_probability(1.0)
        self._hull = merged
        return merged

    # -- comparison ----------------------------------------------------------------

    def approx_equal(self, other: "RangeSet", tolerance: float = 1e-9) -> bool:
        if self is other:
            return True
        if self._kind != other._kind:
            return False
        if not self.is_set:
            return True
        if len(self._ranges) != len(other._ranges):
            return False
        return all(
            a.approx_equal(b, tolerance) for a, b in zip(self._ranges, other._ranges)
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, RangeSet)
            and self._kind == other._kind
            and self._ranges == other._ranges
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._kind, self._ranges))
        return self._hash

    def __repr__(self) -> str:
        if self.is_top:
            return "RangeSet.top()"
        if self.is_bottom:
            return "RangeSet.bottom()"
        return f"RangeSet({{{', '.join(str(r) for r in self._ranges)}}})"

    def __str__(self) -> str:
        if self.is_top:
            return "T"
        if self.is_bottom:
            return "_|_"
        return "{ " + ", ".join(str(r) for r in self._ranges) + " }"


TOP = RangeSet(RangeSet._TOP_KIND)
BOTTOM = RangeSet(RangeSet._BOTTOM_KIND)


def merge_weighted(
    contributions: Sequence[Tuple[float, RangeSet]],
    max_ranges: int = DEFAULT_MAX_RANGES,
) -> RangeSet:
    """The paper's phi evaluation: merge sets weighted by in-edge probability.

    ⊤ contributions are ignored (optimism, as in SCCP); a ⊥ contribution
    with positive weight makes the result ⊥; weights are renormalised over
    the contributing edges.
    """
    if _MERGE_WEIGHTED_MEMO is not None and _perf_active():
        return _MERGE_WEIGHTED_MEMO(tuple(contributions), max_ranges)
    return _merge_weighted(contributions, max_ranges)


def _merge_weighted(
    contributions: Sequence[Tuple[float, RangeSet]],
    max_ranges: int = DEFAULT_MAX_RANGES,
) -> RangeSet:
    """The uncached φ-merge (see :func:`merge_weighted`)."""
    weighted: List[Tuple[float, RangeSet]] = []
    for weight, rset in contributions:
        if weight <= PROB_EPSILON or rset.is_top:
            continue
        if rset.is_bottom:
            return BOTTOM
        weighted.append((weight, rset))
    if not weighted:
        return TOP
    total = sum(weight for weight, _ in weighted)
    ranges: List[StridedRange] = []
    for weight, rset in weighted:
        factor = weight / total
        ranges.extend(r.scaled(factor) for r in rset.ranges)
    return RangeSet.from_ranges(ranges, max_ranges=max_ranges, renormalise=True)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _build_set(
    ranges: Iterable[StridedRange], max_ranges: int, renormalise: bool
) -> RangeSet:
    """The uncached set builder behind :meth:`RangeSet.from_ranges`."""
    # One pass both filters near-zero ranges and accumulates the
    # probability total used by both normalisation paths below.
    kept: List[StridedRange] = []
    total = 0.0
    for r in ranges:
        if r.probability > PROB_EPSILON:
            kept.append(r)
            total += r.probability
    if not kept:
        return BOTTOM
    if renormalise:
        if total <= PROB_EPSILON:
            return BOTTOM
        kept = [r.scaled(1.0 / total) for r in kept]
    elif abs(total - 1.0) > 1e-6:
        raise ValueError(f"range probabilities sum to {total}, expected 1")
    folded = _fold_duplicates(kept)
    compacted = _compact(folded, max_ranges)
    if compacted is None:
        return BOTTOM
    return RangeSet(RangeSet._SET_KIND, tuple(_canonical_sort(compacted)))


def _fold_duplicates(ranges: List[StridedRange]) -> List[StridedRange]:
    """Combine ranges with identical extent by summing probabilities."""
    by_extent = {}
    order: List[Tuple] = []
    for r in ranges:
        key = (r.lo, r.hi, r.stride)
        if key in by_extent:
            by_extent[key] = by_extent[key] + r.probability
        else:
            by_extent[key] = r.probability
            order.append(key)
    return [
        StridedRange(by_extent[key], key[0], key[1], key[2]) for key in order
    ]


def _canonical_sort(ranges: List[StridedRange]) -> List[StridedRange]:
    def sort_key(r: StridedRange):
        return (
            r.lo.symbol or "",
            r.lo.offset,
            r.hi.symbol or "",
            r.hi.offset,
            r.stride,
        )

    return sorted(ranges, key=sort_key)


def _hull_pair(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    """Smallest representable range covering both, carrying summed weight."""
    lo = bound_min(a.lo, b.lo)
    hi = bound_max(a.hi, b.hi)
    if lo is None or hi is None:
        return None
    stride = math.gcd(a.stride, b.stride)
    if stride == 0 and lo != hi:
        # Two distinct single values: stride is their gap.
        gap = lo.distance(hi)
        if gap is None or math.isinf(gap):
            stride = 1
        else:
            stride = int(gap)
    # Mis-alignment between the two progressions degrades the stride.
    offset_gap = a.lo.distance(b.lo)
    if offset_gap is not None and not math.isinf(offset_gap) and stride > 1:
        stride = math.gcd(stride, int(abs(offset_gap)))
        if stride == 0:
            stride = max(a.stride, b.stride)
    return StridedRange(a.probability + b.probability, lo, hi, stride)


def _merge_cost(a: StridedRange, b: StridedRange, hull: StridedRange) -> float:
    """Information lost by replacing {a, b} with their hull (lower = better)."""
    hull_width = hull.width()
    if hull_width is None or math.isinf(hull_width):
        return math.inf
    width_a = a.width() or 0
    width_b = b.width() or 0
    growth = float(hull_width) - float(width_a) - float(width_b)
    # Weight the growth by how much probability mass gets smeared.
    return max(growth, 0.0) * (a.probability + b.probability) + 1e-9 * float(hull_width)


def _compact(ranges: List[StridedRange], max_ranges: int) -> Optional[List[StridedRange]]:
    """Greedy pairwise merging until the cap is met; None when impossible."""
    if max_ranges < 1:
        raise ValueError("max_ranges must be >= 1")
    current = list(ranges)
    while len(current) > max_ranges:
        best: Optional[Tuple[float, int, int, StridedRange]] = None
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                hull = _hull_pair(current[i], current[j])
                if hull is None:
                    continue
                cost = _merge_cost(current[i], current[j], hull)
                if math.isinf(cost):
                    continue
                if best is None or cost < best[0]:
                    best = (cost, i, j, hull)
        if best is None:
            # Try again allowing infinite-width hulls before giving up.
            for i in range(len(current)):
                for j in range(i + 1, len(current)):
                    hull = _hull_pair(current[i], current[j])
                    if hull is not None:
                        best = (math.inf, i, j, hull)
                        break
                if best is not None:
                    break
        if best is None:
            return None  # incomparable symbolic ranges: give up (⊥)
        _, i, j, hull = best
        current = [r for k, r in enumerate(current) if k not in (i, j)]
        current.append(hull)
    return current
