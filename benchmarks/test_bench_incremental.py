"""Incremental analysis benchmark: the one-function-edit recheck.

The editor-loop contract: against a warm summary store, re-checking a
module after a single-function edit must reanalyze only the edited
component and replay the rest -- at least **5x** faster than a cold
whole-module run (gated), with byte-identical rendered output (gated).

A third gate keeps the subsystem off the hot path: with every
``repro.incremental`` module imported, the engine's seed work counts
stay byte-identical to ``seed_work_counts.json``.

Results land in ``BENCH_incremental.json``.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import time

from benchmarks.conftest import emit
from repro import rendering
from repro.core.interprocedural import analyse_module
from repro.incremental.driver import analyse_module_incremental
from repro.incremental.store import IncrementalStore
from repro.ir import prepare_module
from repro.lang import compile_source

SEED_COUNTS = pathlib.Path(__file__).parent / "seed_work_counts.json"

COMPONENTS = 16
REPEATS = 3
SPEEDUP_GATE = 5.0

COMPONENT_TEMPLATE = """
func leaf_{i}(x) {{
  var t = 0;
  for (j = 0; j < 40; j = j + 1) {{
    if (x + j > {threshold}) {{ t = t + 2; }} else {{ t = t + 1; }}
  }}
  return t;
}}

func mid_{i}(x) {{
  var s = leaf_{i}(x) + leaf_{i}(x + {i});
  if (s > 50) {{ return s - 50; }}
  return s;
}}

func top_{i}(n) {{
  var acc = 0;
  for (k = 0; k < n; k = k + 1) {{ acc = acc + mid_{i}(k); }}
  if (acc > 100) {{ return acc; }}
  return 0 - acc;
}}
"""


def module_source() -> str:
    parts = [
        COMPONENT_TEMPLATE.format(i=i, threshold=20 + i)
        for i in range(COMPONENTS)
    ]
    parts.append("func main(n) { return top_0(n); }\n")
    return "\n".join(parts)


def build(source: str):
    module = compile_source(source)
    return module, prepare_module(module)


def rendered(prediction):
    return (
        rendering.branch_table(
            prediction.all_branches(), prediction.heuristic_branches()
        ),
        rendering.ranges_listing(prediction),
    )


def test_bench_incremental(results_dir, tmp_path):
    source = module_source()
    edited = source.replace("x + j > 25", "x + j > 26")  # edits leaf_5 only
    assert edited != source
    store_dir = str(tmp_path / "store")

    # Warm the disk tier with the pre-edit module (one full analysis).
    warm_module, warm_infos = build(source)
    analyse_module_incremental(
        warm_module, warm_infos, IncrementalStore(disk_dir=store_dir)
    )

    cold_seconds = []
    cold_prediction = None
    for _ in range(REPEATS):
        module, infos = build(edited)
        started = time.perf_counter()
        cold_prediction = analyse_module(module, infos)
        cold_seconds.append(time.perf_counter() - started)

    recheck_seconds = []
    recheck_prediction = None
    outcome = None
    for repeat in range(REPEATS):
        # Each repeat gets its own copy of the warm-but-unedited disk
        # tier: a shared directory would hold the edited component
        # after the first repeat and turn the rest into pure replays,
        # inflating the measured speedup.
        repeat_dir = str(tmp_path / f"store-{repeat}")
        shutil.copytree(store_dir, repeat_dir)
        store = IncrementalStore(disk_dir=repeat_dir)
        module, infos = build(edited)
        started = time.perf_counter()
        recheck_prediction, outcome = analyse_module_incremental(
            module, infos, store
        )
        recheck_seconds.append(time.perf_counter() - started)
        assert set(outcome.reanalyzed) == {"leaf_5", "mid_5", "top_5"}, outcome

    cold_best = min(cold_seconds)
    recheck_best = min(recheck_seconds)
    speedup = cold_best / recheck_best if recheck_best else float("inf")

    # Gate 1: the recheck reanalyzed exactly the edited component
    # (asserted per repeat above); everything else replayed.
    assert len(outcome.replayed) == 3 * COMPONENTS + 1 - 3

    # Gate 2: byte-identical rendered output.
    assert rendered(recheck_prediction) == rendered(cold_prediction)

    # Gate 3: the headline speedup.
    assert speedup >= SPEEDUP_GATE, (
        f"one-function-edit recheck only {speedup:.1f}x faster than cold "
        f"(cold {cold_best * 1000:.1f} ms, recheck {recheck_best * 1000:.1f} ms)"
    )

    report = {
        "components": COMPONENTS,
        "functions": 3 * COMPONENTS + 1,
        "cold_ms": [round(s * 1000, 3) for s in cold_seconds],
        "recheck_ms": [round(s * 1000, 3) for s in recheck_seconds],
        "cold_best_ms": round(cold_best * 1000, 3),
        "recheck_best_ms": round(recheck_best * 1000, 3),
        "speedup": round(speedup, 2),
        "speedup_gate": SPEEDUP_GATE,
        "incremental": outcome.as_metrics(),
    }
    (results_dir / "BENCH_incremental.json").write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n"
    )
    emit(
        results_dir,
        "incremental.txt",
        "\n".join(
            [
                "Incremental recheck after a one-function edit",
                "",
                f"functions:        {report['functions']} "
                f"({COMPONENTS} components)",
                f"cold analysis:    {report['cold_best_ms']:8.1f} ms",
                f"warm recheck:     {report['recheck_best_ms']:8.1f} ms",
                f"speedup:          {report['speedup']:8.2f}x "
                f"(gate >= {SPEEDUP_GATE:.0f}x)",
                f"reanalyzed:       {len(outcome.reanalyzed)} functions; "
                f"replayed {len(outcome.replayed)}",
            ]
        ),
    )


def test_work_counts_unchanged_with_incremental_imported():
    """The subsystem must be invisible until opted into.

    Importing every ``repro.incremental`` module (the CLI imports them
    lazily) must not change a single unit of engine work on the seed
    measurement -- the same gate the observability layers ship under.
    """
    import repro.incremental  # noqa: F401
    import repro.incremental.depgraph  # noqa: F401
    import repro.incremental.driver  # noqa: F401
    import repro.incremental.fingerprint  # noqa: F401
    import repro.incremental.serialize  # noqa: F401
    import repro.incremental.store  # noqa: F401
    import repro.incremental.watch  # noqa: F401

    from repro.evalharness.counting import measure_scaling, measure_workloads

    seed = json.loads(SEED_COUNTS.read_text())
    current = {
        "workloads": [list(row) for row in measure_workloads()],
        "scaling": [list(row) for row in measure_scaling([2, 4, 8, 16, 32, 64])],
    }
    assert current["workloads"] == seed["workloads"]
    assert current["scaling"] == seed["scaling"]
