"""End-to-end observability: traces, logs, metrics, and profiling.

* :mod:`repro.observability.tracer`  -- span timing + event stream
  (:class:`Tracer` / :class:`NullTracer`, ``active()`` / ``use()``);
* :mod:`repro.observability.context` -- trace_id/span_id propagation
  (:class:`TraceContext`, the ``X-Repro-Trace-Id`` header);
* :mod:`repro.observability.events`  -- the event taxonomy;
* :mod:`repro.observability.logging` -- structured JSON log lines with
  trace correlation (the serving daemon's access log);
* :mod:`repro.observability.metrics` -- :class:`MetricsReport`, the
  JSON export consumed by the harness and the benchmarks;
* :mod:`repro.observability.prometheus` -- Prometheus text exposition
  for ``GET /metricsz`` (plus the validating parser CI uses);
* :mod:`repro.observability.chrometrace` -- Chrome trace-event JSON
  export (``about:tracing`` / Perfetto);
* :mod:`repro.observability.profiler` -- per-pass/per-analysis
  self/cumulative profiling and collapsed stacks (``repro profile``);
* :mod:`repro.observability.explain` -- "why is this branch 87.5%?";
* :mod:`repro.observability.instrument` -- traced compile/analyse
  pipelines (phase spans for lex/parse/lower/ssa/propagate/predict).

``explain``, ``instrument``, and ``profiler`` depend on the analysis
layers, while the engine itself imports the tracer from here -- they
are loaded lazily (PEP 562) to keep ``repro.core`` ->
``repro.observability`` acyclic.
"""

from repro.observability.events import (
    EVENT_KINDS,
    BranchResolution,
    DerivationAttempt,
    DiagnosticFinding,
    HeuristicChain,
    LatticeTransition,
    PassBegin,
    PassEnd,
    PhiMerge,
    PiRefinement,
    ServerRequestBegin,
    ServerRequestEnd,
    TraceEvent,
    WorklistPop,
    WorklistPush,
)
from repro.observability.context import (
    TRACE_HEADER,
    TraceContext,
    current_trace_id,
    mint,
    new_span_id,
    new_trace_id,
)
from repro.observability.metrics import (
    SCHEMA_KEYS,
    SCHEMA_VERSION,
    MetricsReport,
    build_metrics_report,
    validate_report_dict,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    PhaseTiming,
    SpanRecord,
    Tracer,
    active,
    use,
)

_LAZY = {
    "BranchExplanation": "repro.observability.explain",
    "explain_branch": "repro.observability.explain",
    "explain_module": "repro.observability.explain",
    "TraceSession": "repro.observability.instrument",
    "compile_source_traced": "repro.observability.instrument",
    "trace_analysis": "repro.observability.instrument",
    "ProfileReport": "repro.observability.profiler",
    "ProfileSession": "repro.observability.profiler",
    "profile_source": "repro.observability.profiler",
    "JsonFormatter": "repro.observability.logging",
    "configure_json_logging": "repro.observability.logging",
    "get_logger": "repro.observability.logging",
    "log_event": "repro.observability.logging",
    "chrome_trace_document": "repro.observability.chrometrace",
    "validate_chrome_trace": "repro.observability.chrometrace",
    "write_chrome_trace": "repro.observability.chrometrace",
    "parse_prometheus_text": "repro.observability.prometheus",
    "render_server_metrics": "repro.observability.prometheus",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "EVENT_KINDS",
    "NULL_TRACER",
    "SCHEMA_KEYS",
    "SCHEMA_VERSION",
    "TRACE_HEADER",
    "BranchExplanation",
    "BranchResolution",
    "DerivationAttempt",
    "DiagnosticFinding",
    "HeuristicChain",
    "JsonFormatter",
    "LatticeTransition",
    "MetricsReport",
    "NullTracer",
    "PassBegin",
    "PassEnd",
    "PhaseTiming",
    "PhiMerge",
    "PiRefinement",
    "ProfileReport",
    "ProfileSession",
    "ServerRequestBegin",
    "ServerRequestEnd",
    "SpanRecord",
    "TraceContext",
    "TraceEvent",
    "TraceSession",
    "Tracer",
    "WorklistPop",
    "WorklistPush",
    "active",
    "build_metrics_report",
    "chrome_trace_document",
    "compile_source_traced",
    "configure_json_logging",
    "current_trace_id",
    "explain_branch",
    "explain_module",
    "get_logger",
    "log_event",
    "mint",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus_text",
    "profile_source",
    "render_server_metrics",
    "trace_analysis",
    "use",
    "validate_chrome_trace",
    "validate_report_dict",
    "write_chrome_trace",
]
