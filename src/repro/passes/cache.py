"""Demand-computed, invalidation-aware analysis results.

The :class:`AnalysisCache` is the single place structural analyses
(CFG, dominators, postdominators, loops), the Wu–Larus frequency
solution, and the VRP module prediction are constructed for pass
pipelines.  Passes request analyses by name; the cache computes them
on first use and serves them until a mutating pass invalidates them
(everything the pass did not declare in ``preserves`` is dropped).

Caching policy
--------------

Analyses fall into two classes:

* **structural** (``cfg``/``dominators``/``postdominators``/``loops``/
  ``context``) -- pure functions of the current IR.  Recomputing one on
  unchanged IR is observationally identical, so *caching* them is a
  pure optimisation and is gated on the perf layer (``REPRO_PERF``,
  ``VRPConfig.perf``) like every other speed/memory trade in the
  engine.  With the layer off they are rebuilt per request.
* **semantic** (``prediction``, ``frequency``) -- results clients keep
  *using* across mutating passes (the free-function pipeline computes
  one prediction up front and feeds it to every fold).  These are
  always cached; whether a pass may keep consuming them is governed
  solely by its ``preserves`` declaration, never by the perf switch --
  otherwise disabling the perf layer would change results.

The module-level helpers :func:`dominator_tree`,
:func:`postdominator_tree` and :func:`loop_info` are the one
construction site for the corresponding trees repo-wide; the SSA
builder, the IR verifier, and the heuristics' ``FunctionContext`` all
go through them.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.config import VRPConfig
from repro.core.perf import context as perf_context
from repro.ir.cfg import CFG
from repro.ir.dominance import DominatorTree
from repro.ir.function import Function, Module
from repro.ir.postdominance import PostDominatorTree

from repro.passes.base import ANALYSIS_NAMES

#: Analyses whose cached value clients deliberately keep using across
#: mutating passes (see the module docstring).  Never perf-gated.
SEMANTIC_ANALYSES = frozenset(("prediction", "frequency", "summaries"))

#: Analyses computed per module rather than per function.  ``callgraph``
#: and the interprocedural products ride with ``prediction``: any
#: function's IR feeds them, so module-wide invalidation is the unit.
MODULE_SCOPE = frozenset(
    ("prediction", "callgraph", "summaries", "module_prediction")
)


# -- single construction site for the structural trees ----------------------
#
# Each helper memoises its result on the CFG snapshot itself: the trees
# are pure functions of the snapshot, and a snapshot is never mutated
# ("construct a new one after any structural mutation" -- ir/cfg.py),
# so the memo can never go stale.  Memoisation is perf-gated; with the
# layer off the helpers degrade to plain constructors.


def dominator_tree(cfg: CFG) -> DominatorTree:
    """The dominator tree of a CFG snapshot (memoised on the snapshot)."""
    if not perf_context.is_active():
        return DominatorTree(cfg)
    tree = getattr(cfg, "_cached_dominator_tree", None)
    if tree is None:
        tree = DominatorTree(cfg)
        cfg._cached_dominator_tree = tree
    return tree


def postdominator_tree(cfg: CFG) -> PostDominatorTree:
    """The postdominator tree of a CFG snapshot (memoised on the snapshot)."""
    if not perf_context.is_active():
        return PostDominatorTree(cfg)
    tree = getattr(cfg, "_cached_postdominator_tree", None)
    if tree is None:
        tree = PostDominatorTree(cfg)
        cfg._cached_postdominator_tree = tree
    return tree


def loop_info(cfg: CFG):
    """Natural-loop information for a CFG snapshot (memoised on it)."""
    from repro.analysis.loops import LoopInfo

    if not perf_context.is_active():
        return LoopInfo(cfg)
    info = getattr(cfg, "_cached_loop_info", None)
    if info is None:
        info = LoopInfo(cfg)
        cfg._cached_loop_info = info
    return info


class AnalysisCache:
    """Analyses over one module, computed on demand and invalidated
    when a mutating pass clobbers them.

    Parameters
    ----------
    module, ssa_infos:
        The prepared module (``prepare_module`` output) the pipeline
        runs over.  ``ssa_infos`` may be omitted for purely structural
        use, but is required before ``prediction`` can be computed.
    config:
        Engine knobs for the prediction; defaults to :class:`VRPConfig`.
    predictor:
        Pre-built :class:`~repro.core.predictor.VRPPredictor` to reuse;
        built from ``config`` on first demand otherwise.
    enabled:
        Overrides perf gating of the *structural* cache: ``True`` /
        ``False`` force it on/off, ``None`` (default) follows the perf
        layer.  Semantic analyses are cached regardless.
    """

    def __init__(
        self,
        module: Module,
        ssa_infos: Optional[Dict[str, object]] = None,
        config: Optional[VRPConfig] = None,
        predictor=None,
        enabled: Optional[bool] = None,
    ):
        self.module = module
        self.ssa_infos = ssa_infos or {}
        self.config = config or VRPConfig()
        self._predictor = predictor
        self._enabled = enabled
        self._function_entries: Dict[str, Dict[str, object]] = {}
        self._module_entries: Dict[str, object] = {}
        #: Running totals, exported into metrics schema v4.
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.invalidations: Dict[str, int] = {}

    # -- gating ---------------------------------------------------------------

    def caches_structural(self) -> bool:
        """Whether structural analyses are cached (vs rebuilt per request)."""
        if self._enabled is not None:
            return self._enabled
        return bool(self.config.perf) and perf_context.is_active()

    # -- the request surface --------------------------------------------------

    def get(self, name: str, function: Union[Function, str, None] = None):
        """Request an analysis by name, computing it on a cache miss."""
        if name not in ANALYSIS_NAMES:
            raise KeyError(f"unknown analysis {name!r}")
        if name in MODULE_SCOPE:
            return self._get_module(name)
        function = self._resolve(function, name)
        return self._get_function(name, function)

    def _resolve(self, function, name) -> Function:
        if function is None:
            raise ValueError(f"analysis {name!r} is function-scoped")
        if isinstance(function, str):
            return self.module.functions[function]
        return function

    def _get_module(self, name: str):
        if name in self._module_entries:
            self.hits[name] = self.hits.get(name, 0) + 1
            return self._module_entries[name]
        self.misses[name] = self.misses.get(name, 0) + 1
        value = self._compute(name, None)
        self._module_entries[name] = value
        return value

    def _get_function(self, name: str, function: Function):
        cacheable = name in SEMANTIC_ANALYSES or self.caches_structural()
        entries = self._function_entries.setdefault(function.name, {})
        if cacheable and name in entries:
            self.hits[name] = self.hits.get(name, 0) + 1
            return entries[name]
        self.misses[name] = self.misses.get(name, 0) + 1
        value = self._compute(name, function)
        if cacheable:
            entries[name] = value
        return value

    # -- convenience accessors ------------------------------------------------

    def cfg(self, function) -> CFG:
        return self.get("cfg", function)

    def dominators(self, function) -> DominatorTree:
        return self.get("dominators", function)

    def postdominators(self, function) -> PostDominatorTree:
        return self.get("postdominators", function)

    def loops(self, function):
        return self.get("loops", function)

    def context(self, function):
        """The heuristics' :class:`FunctionContext` over cached analyses."""
        return self.get("context", function)

    def frequency(self, function):
        return self.get("frequency", function)

    def prediction(self):
        """The module-wide VRP prediction (computes it on first demand)."""
        return self.get("prediction")

    def callgraph(self):
        """The module's call graph (sites, edges, SCC condensation)."""
        return self.get("callgraph")

    def summaries(self):
        """Per-function interprocedural summaries (jump/return/purity)."""
        return self.get("summaries")

    def function_prediction(self, function):
        name = function if isinstance(function, str) else function.name
        return self.prediction().functions[name]

    # -- computation ----------------------------------------------------------

    def _compute(self, name: str, function: Optional[Function]):
        """Compute one analysis, under an ``analysis:<name>`` span.

        The span makes per-analysis wall time visible to ``repro
        profile`` and ``--emit-metrics``; with no active tracer (the
        default) the guard is one attribute test, and analyses are
        coarse enough that the cost is invisible next to the work.
        """
        from repro.observability import tracer as tracing

        tracer = tracing.active()
        if tracer.enabled:
            with tracer.span(f"analysis:{name}"):
                return self._compute_inner(name, function)
        return self._compute_inner(name, function)

    def _compute_inner(self, name: str, function: Optional[Function]):
        if name == "cfg":
            return CFG(function)
        if name == "dominators":
            return dominator_tree(self.cfg(function))
        if name == "postdominators":
            return postdominator_tree(self.cfg(function))
        if name == "loops":
            return loop_info(self.cfg(function))
        if name == "context":
            from repro.heuristics.base import FunctionContext

            cfg = self.cfg(function)
            return FunctionContext(
                function,
                cfg=cfg,
                loops=self.loops(function),
                postdom=self.postdominators(function),
            )
        if name == "frequency":
            from repro.analysis.frequency import propagate_frequencies

            prediction = self.prediction().functions.get(function.name)
            branch_probability = (
                prediction.branch_probability if prediction is not None else {}
            )
            return propagate_frequencies(function, branch_probability)
        if name == "prediction":
            predictor = self._predictor
            if predictor is None:
                from repro.core.predictor import VRPPredictor

                predictor = VRPPredictor(config=self.config)
                self._predictor = predictor
            return predictor.predict_module(
                self.module, self.ssa_infos, analysis_cache=self
            )
        if name == "module_prediction":
            # Explicit module-scope alias of ``prediction`` so pipelines
            # can declare the interprocedural product by its own name.
            return self.prediction()
        if name == "callgraph":
            from repro.core.callgraph import CallGraph

            return CallGraph(self.module)
        if name == "summaries":
            prediction = self.prediction()
            if getattr(prediction, "summaries", None) is not None:
                return prediction.summaries
            # Intraprocedural prediction (no driver-built summaries):
            # distil what the per-function predictions do expose.
            from repro.core.summaries import build_summaries, compute_purity

            callgraph = self.get("callgraph")
            return build_summaries(
                self.module,
                callgraph,
                compute_purity(self.module, callgraph),
                {},
                {
                    fn: pred.return_set
                    for fn, pred in prediction.functions.items()
                },
                {
                    fn: pred.block_frequency
                    for fn, pred in prediction.functions.items()
                },
            )
        raise KeyError(f"unknown analysis {name!r}")  # pragma: no cover

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, preserves=frozenset(), functions=None) -> int:
        """Drop every analysis not in ``preserves``; returns entries dropped.

        ``functions`` limits function-scoped invalidation to the named
        functions (module-scoped analyses are always dropped when not
        preserved, since any function's IR feeds them).
        """
        dropped = 0
        for name in list(self._module_entries):
            if name not in preserves:
                del self._module_entries[name]
                self.invalidations[name] = self.invalidations.get(name, 0) + 1
                dropped += 1
        targets = (
            list(self._function_entries)
            if functions is None
            else [f for f in functions if f in self._function_entries]
        )
        for function_name in targets:
            entries = self._function_entries[function_name]
            for name in list(entries):
                if name not in preserves:
                    del entries[name]
                    self.invalidations[name] = self.invalidations.get(name, 0) + 1
                    dropped += 1
        return dropped

    def invalidate_all(self) -> int:
        return self.invalidate(frozenset())

    # -- reporting ------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/invalidation totals per analysis (metrics v4)."""
        out: Dict[str, Dict[str, int]] = {}
        for name in ANALYSIS_NAMES:
            hits = self.hits.get(name, 0)
            misses = self.misses.get(name, 0)
            invalidated = self.invalidations.get(name, 0)
            if hits or misses or invalidated:
                out[name] = {
                    "hits": hits,
                    "misses": misses,
                    "invalidations": invalidated,
                }
        return out
