"""Branch explain mode on the Figure 4 example and a bottom-range branch."""

import pytest

from repro.ir import prepare_module
from repro.lang import compile_source
from repro.observability import explain_branch, explain_module

PAPER_FIGURE_2 = """
func main(n) {
  var y = 0;
  for (x = 0; x < 10; x = x + 1) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { n = n + 1; }
  }
  return n;
}
"""

BOTTOM_BRANCH = """
func main(n) {
  var total = 0;
  var v = input();
  if (v < 0) { return 0; }
  for (i = 0; i < 10; i = i + 1) { total = total + i; }
  return total;
}
"""


def _prepared(source):
    module = compile_source(source)
    return module, prepare_module(module)


class TestRangesBranch:
    @pytest.fixture(scope="class")
    def explanations(self):
        module, ssa_infos = _prepared(PAPER_FIGURE_2)
        return explain_module(module, ssa_infos)

    def test_every_branch_is_explained(self, explanations):
        assert set(explanations) == {
            ("main", "for1"),
            ("main", "body2"),
            ("main", "join7"),
        }

    def test_loop_branch_names_controlling_range(self, explanations):
        explanation = explanations[("main", "for1")]
        assert explanation.source == "ranges"
        assert explanation.probability == pytest.approx(10 / 11)
        assert explanation.cmp_op == "lt"
        operands = dict(explanation.operands)
        assert operands["x.1"] == "{ 1[0:10:1] }"
        assert operands["10"] == "{ 1[10:10:0] }"
        rendered = explanation.render()
        assert "predicted from value ranges" in rendered
        assert "{ 1[0:10:1] }" in rendered
        assert "x.1 < 10" in rendered

    def test_inner_branch_shows_weighted_range_evidence(self, explanations):
        rendered = explanations[("main", "body2")].render()
        assert "P(true) = 20.0%" in rendered
        assert "{ 1[0:9:1] }" in rendered  # the controlling range of x.3


class TestHeuristicBranch:
    @pytest.fixture(scope="class")
    def explanation(self):
        module, ssa_infos = _prepared(BOTTOM_BRANCH)
        explanations = explain_module(module, ssa_infos)
        ((key, value),) = [
            item for item in explanations.items() if item[1].source == "heuristic"
        ]
        return value

    def test_bottom_range_falls_back_to_heuristics(self, explanation):
        assert explanation.source == "heuristic"
        operands = dict(explanation.operands)
        assert operands["v.0"] == "_|_"

    def test_chain_and_combination_are_reported(self, explanation):
        assert explanation.heuristics, "the Ball-Larus chain must be recorded"
        names = [name for name, _ in explanation.heuristics]
        assert "return" in names  # the guarded early return fires this one
        rendered = explanation.render()
        assert "heuristic fallback (controlling range is bottom)" in rendered
        assert "Ball-Larus heuristic chain" in rendered
        assert "-> combined" in rendered
        # The rendered combined value matches the branch probability.
        assert f"{explanation.probability:5.3f}" in rendered


class TestExplainBranchLookup:
    def test_single_branch_lookup(self):
        module, ssa_infos = _prepared(PAPER_FIGURE_2)
        explanation = explain_branch(module, ssa_infos, "main", "join7")
        assert explanation.probability == pytest.approx(0.3)

    def test_unknown_branch_lists_known_ones(self):
        module, ssa_infos = _prepared(PAPER_FIGURE_2)
        with pytest.raises(KeyError) as excinfo:
            explain_branch(module, ssa_infos, "main", "nope")
        assert "main/for1" in str(excinfo.value)
