"""Weighted strided ranges: the paper's ``P[L:U:S]`` building block.

A :class:`StridedRange` is a probability-weighted arithmetic progression
``{L, L+S, L+2S, ..., U}``.  ``S == 0`` encodes a single value (``L == U``).
Bounds may be symbolic (``n-1``) or infinite on the numeric side; an even
distribution over the progression is assumed (uneven distributions are
expressed as several ranges, exactly as in the paper).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.bounds import Bound, NEG_INF, POS_INF, Number
from repro.core.perf.context import is_active as _perf_active


class RangeError(ValueError):
    """Raised when constructing a malformed strided range."""


class StridedRange:
    """Immutable weighted range ``probability[lo:hi:stride]``."""

    __slots__ = ("probability", "lo", "hi", "stride", "_hash")

    def __init__(self, probability: float, lo: Bound, hi: Bound, stride: int):
        if probability < 0:
            raise RangeError(f"negative probability {probability}")
        if stride < 0:
            raise RangeError(f"negative stride {stride}")
        order = lo.compare(hi)
        if order is not None and order > 0:
            raise RangeError(f"inverted range [{lo}:{hi}]")
        lo, hi, stride = _normalise(lo, hi, stride)
        self.probability = float(probability)
        self.lo = lo
        self.hi = hi
        self.stride = stride
        self._hash = None

    @classmethod
    def _reweighted(
        cls, probability: float, source: "StridedRange"
    ) -> "StridedRange":
        """Same extent as ``source`` with a new probability, skipping
        validation and normalisation (both idempotent on an existing
        range).  Perf-layer fast path for :meth:`scaled`/
        :meth:`with_probability`."""
        self = cls.__new__(cls)
        self.probability = float(probability)
        self.lo = source.lo
        self.hi = source.hi
        self.stride = source.stride
        self._hash = None
        return self

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def single(probability: float, value: Number) -> "StridedRange":
        bound = Bound.number(value)
        return StridedRange(probability, bound, bound, 0)

    @staticmethod
    def span(probability: float, lo: Number, hi: Number, stride: int = 1) -> "StridedRange":
        return StridedRange(probability, Bound.number(lo), Bound.number(hi), stride)

    @staticmethod
    def symbol(probability: float, name: str, offset: Number = 0) -> "StridedRange":
        bound = Bound.symbolic(name, offset)
        return StridedRange(probability, bound, bound, 0)

    # -- shape queries -----------------------------------------------------------

    def is_single(self) -> bool:
        return self.lo == self.hi

    def is_numeric(self) -> bool:
        return self.lo.is_numeric() and self.hi.is_numeric()

    def is_finite(self) -> bool:
        return self.lo.is_finite() and self.hi.is_finite()

    def symbols(self) -> set:
        out = set()
        if self.lo.symbol is not None:
            out.add(self.lo.symbol)
        if self.hi.symbol is not None:
            out.add(self.hi.symbol)
        return out

    def count(self) -> Optional[int]:
        """Number of values in the progression; None when unknowable.

        Computable for purely numeric finite ranges and for ranges whose
        two bounds share a symbol (their width is then numeric).
        """
        if self.is_single():
            return 1
        width = self.lo.distance(self.hi)
        if width is None or math.isinf(width):
            return None
        if self.stride == 0:
            return 1
        return int(width // self.stride) + 1

    def width(self) -> Optional[Number]:
        """``hi - lo`` when the bounds are comparable, else None."""
        return self.lo.distance(self.hi)

    # -- weighting ----------------------------------------------------------------

    def scaled(self, factor: float) -> "StridedRange":
        """Same range with probability multiplied by ``factor``."""
        if _perf_active():
            return StridedRange._reweighted(self.probability * factor, self)
        return StridedRange(self.probability * factor, self.lo, self.hi, self.stride)

    def with_probability(self, probability: float) -> "StridedRange":
        if _perf_active():
            if probability == self.probability:
                return self
            return StridedRange._reweighted(probability, self)
        return StridedRange(probability, self.lo, self.hi, self.stride)

    # -- identity -----------------------------------------------------------------

    def same_extent(self, other: "StridedRange") -> bool:
        """True when lo/hi/stride agree (probability ignored)."""
        return self.lo == other.lo and self.hi == other.hi and self.stride == other.stride

    def approx_equal(self, other: "StridedRange", tolerance: float = 1e-9) -> bool:
        return self.same_extent(other) and abs(self.probability - other.probability) <= tolerance

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, StridedRange)
            and self.same_extent(other)
            and self.probability == other.probability
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.probability, self.lo, self.hi, self.stride))
        return self._hash

    def __repr__(self) -> str:
        return f"StridedRange({self.probability!r}, {self.lo!r}, {self.hi!r}, {self.stride})"

    def __str__(self) -> str:
        prob = f"{self.probability:.4g}"
        return f"{prob}[{self.lo}:{self.hi}:{self.stride}]"


def _normalise(lo: Bound, hi: Bound, stride: int):
    """Canonicalise: single values get stride 0; numeric his align to the
    progression; multi-value ranges need stride >= 1 (defaulting to 1 when
    alignment is unknowable)."""
    if lo == hi:
        return lo, hi, 0
    width = lo.distance(hi)
    if stride == 0:
        stride = 1
    if width is not None and not math.isinf(width):
        if width < stride:
            # Fewer than two full steps: snap to the two endpoints if they
            # do not align, else collapse handled above.
            stride = int(width) if width >= 1 else 1
        else:
            aligned = (int(width) // stride) * stride
            if aligned != width and hi.is_numeric():
                hi = Bound.number(lo.offset + aligned) if lo.is_numeric() else hi
            elif aligned != width and not hi.is_numeric():
                hi = Bound(lo.offset + aligned, lo.symbol)
    return lo, hi, stride
