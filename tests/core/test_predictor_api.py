"""VRPPredictor front-door API tests."""

import pytest

from repro.core import VRPConfig, VRPPredictor
from repro.core.predictor import predict_branch_probabilities
from repro.heuristics import Predictor, Rule9050Predictor

from tests.helpers import compile_and_prepare


class FixedPredictor(Predictor):
    """Test double: predicts a fixed probability everywhere."""

    name = "fixed"

    def __init__(self, probability):
        self.probability = probability

    def predict_branch(self, context, label, branch):
        return self.probability


SOURCE = """
func main(n) {
  var t = 0;
  for (i = 0; i < 10; i = i + 1) { t = t + 1; }
  if (n > 0) { t = t + 1; }
  return t;
}
"""


class TestFallbackWiring:
    def test_custom_fallback_used_on_bottom_branches(self):
        module, infos = compile_and_prepare(SOURCE)
        predictor = VRPPredictor(fallback=FixedPredictor(0.123))
        prediction = predictor.predict_module(module, infos)
        probabilities = prediction.functions["main"].branch_probability
        assert any(abs(p - 0.123) < 1e-9 for p in probabilities.values())
        # The derivable loop branch is still range-based, not 0.123.
        assert any(abs(p - 10 / 11) < 1e-9 for p in probabilities.values())

    def test_default_fallback_is_ball_larus(self):
        from repro.heuristics import BallLarusPredictor

        predictor = VRPPredictor()
        assert isinstance(predictor.fallback, BallLarusPredictor)

    def test_rule9050_as_fallback(self):
        module, infos = compile_and_prepare(SOURCE)
        predictor = VRPPredictor(fallback=Rule9050Predictor())
        prediction = predictor.predict_module(module, infos)
        probabilities = prediction.functions["main"].branch_probability
        assert any(abs(p - 0.5) < 1e-9 for p in probabilities.values())


class TestConvenienceFunction:
    def test_predict_branch_probabilities(self):
        module, infos = compile_and_prepare(SOURCE)
        probabilities = predict_branch_probabilities(module, infos)
        assert len(probabilities) == 2
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    def test_config_threads_through(self):
        module, infos = compile_and_prepare(SOURCE)
        small = predict_branch_probabilities(
            module, infos, config=VRPConfig(max_ranges=1)
        )
        assert len(small) == 2


class TestEntryParamRanges:
    def test_entry_ranges_shape_result(self):
        from repro.core.rangeset import RangeSet

        module, infos = compile_and_prepare(
            "func main(n) { if (n > 4) { return 1; } return 0; }"
        )
        predictor = VRPPredictor()
        prediction = predictor.predict_module(
            module, infos, entry_param_ranges={"n": RangeSet.span(0, 9)}
        )
        (probability,) = prediction.functions["main"].branch_probability.values()
        assert probability == pytest.approx(0.5)
