"""Debug-mode lattice sanitizer for the propagation engine.

Enabled with :attr:`repro.core.config.VRPConfig.sanitize`, the sanitizer
validates invariants the engine relies on but never re-checks on the hot
path:

* **Lattice descent** -- a variable's value only moves downward through
  the levels ⊤ → range set: once a name holds a range set it never
  loses that precision back to ⊤.  ⊥ ("nothing known yet": an
  unvisited phi, an untracked load, an undefined operation) sits
  outside the descent chain and may be replaced by anything as paths
  become executable.  (Within the range-set level the support may
  shrink or shift as probability mass moves, so only the level itself
  is a hard invariant.)
* **π narrowing** -- an assertion node only narrows its source: the
  refined set's hull must stay inside the source hull.
* **Worklist stabilisation** -- no single worklist item is reprocessed
  unboundedly; churn past the widening/freezing budget means a
  fixed-point bug rather than slow convergence.
* **Frequency conservation** -- at the fixed point each branch's
  out-edge frequencies sum to its block frequency and every branch
  probability lies in [0, 1].

A violation raises :class:`SanitizerError` immediately, pointing at the
first corrupt transition instead of letting it propagate into the
prediction.  The hooks follow the tracing pattern: with ``sanitize``
off, the engine holds ``self._sanitize = None`` and every site costs a
single ``is not None`` test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable

from repro.core.rangeset import RangeSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import VRPConfig
    from repro.ir.instructions import Pi


class SanitizerError(Exception):
    """An engine invariant was violated during propagation."""

    def __init__(self, function_name: str, invariant: str, detail: str):
        self.function_name = function_name
        self.invariant = invariant
        self.detail = detail
        super().__init__(
            f"sanitizer: {invariant} violated in function "
            f"{function_name!r}: {detail}"
        )


def _lattice_level(value: RangeSet) -> int:
    """⊤ = 2, range set = 1, ⊥ = 0; transitions must not increase this."""
    if value.is_top:
        return 2
    if value.is_set:
        return 1
    return 0


class LatticeSanitizer:
    """Invariant checker attached to one :class:`PropagationEngine` run."""

    def __init__(self, function_name: str, config: "VRPConfig"):
        self.function_name = function_name
        self.config = config
        # Worklist budget per item: generous enough for legitimate
        # convergence (widening plus freezing plus slack) while still
        # catching unbounded churn long before the engine's global
        # safety valve fires.
        self.item_budget = 64 + 8 * (config.widen_after + config.freeze_after)
        self._item_counts: Dict[Hashable, int] = {}
        self.checks_run = 0

    # -- per-event hooks ---------------------------------------------------------

    def check_transition(self, name: str, old: RangeSet, new: RangeSet) -> None:
        """Values only descend the lattice (⊤ → set); ⊥ may become anything."""
        self.checks_run += 1
        if old.is_bottom:
            return  # first information arriving on a newly live path
        if _lattice_level(new) > _lattice_level(old):
            raise SanitizerError(
                self.function_name,
                "lattice-descent",
                f"{name} ascended from {old} to {new}",
            )

    def check_pi(self, pi: "Pi", src: RangeSet, refined: RangeSet) -> None:
        """π assertions only narrow: refined hull ⊆ source hull.

        Skipped when the source is ⊤/⊥ (the paper lets an assertion
        manufacture a range from nothing -- that is its whole point on
        the first visit) or when symbolic bounds make the hulls
        incomparable.
        """
        self.checks_run += 1
        if not (src.is_set and refined.is_set):
            return
        src_hull = src.hull()
        new_hull = refined.hull()
        if src_hull is None or new_hull is None:
            return
        lo_ok = src_hull.lo.less_equal(new_hull.lo)
        hi_ok = new_hull.hi.less_equal(src_hull.hi)
        if lo_ok is False or hi_ok is False:
            raise SanitizerError(
                self.function_name,
                "pi-narrowing",
                f"pi {pi.dest} widened {src} to {refined} "
                f"(assertion {pi.src} {pi.op} {pi.bound})",
            )

    def note_item(self, key: Hashable) -> None:
        """Count worklist pops per item; unbounded churn is a bug."""
        self.checks_run += 1
        count = self._item_counts.get(key, 0) + 1
        self._item_counts[key] = count
        if count > self.item_budget:
            raise SanitizerError(
                self.function_name,
                "worklist-stabilisation",
                f"item {key!r} reprocessed {count} times "
                f"(budget {self.item_budget})",
            )

    # -- fixed-point hook --------------------------------------------------------

    def check_final(self, engine) -> None:
        """Validate the converged state of ``engine`` (a PropagationEngine)."""
        self.checks_run += 1
        if engine.aborted:
            raise SanitizerError(
                self.function_name,
                "fixed-point",
                "safety valve aborted propagation before stabilisation",
            )
        if engine.flow_pending or engine.ssa_pending:
            raise SanitizerError(
                self.function_name,
                "fixed-point",
                f"worklists not drained: {len(engine.flow_pending)} flow, "
                f"{len(engine.ssa_pending)} ssa items pending",
            )
        for label, probability in engine.branch_prob.items():
            if not (-1e-9 <= probability <= 1.0 + 1e-9):
                raise SanitizerError(
                    self.function_name,
                    "probability-bounds",
                    f"branch {label} has probability {probability}",
                )
        cap = engine.config.frequency_cap
        for label, block in engine.function.blocks.items():
            if label not in engine.visited:
                continue
            successors = block.successors()
            if len(successors) < 2:
                continue
            if label not in engine.branch_prob:
                continue  # branch still unresolved (⊤ condition)
            node_freq = engine.node_frequency(label)
            if node_freq <= 0.0 or node_freq >= 0.5 * cap:
                # Zero-frequency blocks have nothing to conserve; near
                # the cap the clamp itself breaks conservation.
                continue
            out_sum = sum(
                engine.edge_freq.get((label, succ), 0.0) for succ in successors
            )
            # _set_edge_freq suppresses sub-tolerance and late sub-5%
            # updates, so allow generous relative slack.
            if abs(out_sum - node_freq) > 0.15 * max(1.0, node_freq):
                raise SanitizerError(
                    self.function_name,
                    "frequency-conservation",
                    f"block {label}: out-edge frequencies sum to {out_sum}, "
                    f"block frequency is {node_freq}",
                )
