"""Figure 6: evaluation sub-operations versus program size.

Same methodology as Figure 5, counting the pairwise range operations
inside each expression evaluation (up to R^2 per evaluation).  Linearity
here demonstrates that the richer lattice does not change the asymptotic
behaviour -- the paper's central efficiency claim.
"""

from benchmarks.conftest import emit
from repro.evalharness import (
    format_scatter,
    linearity_ratio,
    measure_scaling,
    measure_workloads,
)


def test_figure6_sub_operations(benchmark, results_dir):
    scaled = benchmark.pedantic(
        lambda: measure_scaling([2, 4, 8, 16, 32, 64]), rounds=1, iterations=1
    )
    workload_counts = measure_workloads()

    points = [(instructions, subops) for instructions, _, subops in scaled]
    lines = ["Figure 6 reproduction: evaluation sub-operations vs instructions", ""]
    lines.append("Synthetic size-scaled family:")
    lines.append(format_scatter(points, "instructions", "sub-operations"))
    lines.append("")
    lines.append("Workload suite:")
    lines.append(f"{'workload':>12s}  {'instructions':>12s}  {'sub-ops':>12s}")
    for name, instructions, _, subops in workload_counts:
        lines.append(f"{name:>12s}  {instructions:>12d}  {subops:>12d}")
    lines.append("")
    per_eval = [
        subops / max(1, evaluations) for _, evaluations, subops in scaled
    ]
    lines.append(
        "sub-operations per evaluation across sizes: "
        + ", ".join(f"{x:.2f}" for x in per_eval)
        + "  (paper: bounded by R^2 = 16)"
    )
    emit(results_dir, "fig6_suboperations.txt", "\n".join(lines))

    assert linearity_ratio(points) < 3.0
    assert all(x <= 16.0 for x in per_eval)  # R^2 with R = 4
