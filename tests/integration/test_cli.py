"""Command-line interface tests."""

import json

import pytest

from repro.cli import main

PROGRAM = """
func main(n) {
  var t = 0;
  for (i = 0; i < 10; i = i + 1) { t = t + i; }
  if (t > 1000) { t = 0; }
  return t;
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "program.toy"
    path.write_text(PROGRAM)
    return str(path)


class TestPredict:
    def test_predict_prints_branches(self, program_file, capsys):
        assert main(["predict", program_file]) == 0
        out = capsys.readouterr().out
        assert "main" in out
        assert "90.9%" in out  # the 10/11 loop branch

    def test_numeric_flag_accepted(self, program_file, capsys):
        assert main(["predict", program_file, "--numeric", "--intra"]) == 0
        assert "main" in capsys.readouterr().out

    def test_max_ranges_flag(self, program_file, capsys):
        assert main(["predict", program_file, "--max-ranges", "2"]) == 0


class TestOtherCommands:
    def test_ir_dump(self, program_file, capsys):
        assert main(["ir", program_file]) == 0
        out = capsys.readouterr().out
        assert "phi" in out
        assert "pi" in out  # assertions present

    def test_ranges_dump(self, program_file, capsys):
        assert main(["ranges", program_file]) == 0
        out = capsys.readouterr().out
        assert "func main:" in out
        assert "[0:10:1]" in out

    def test_run_with_profile(self, program_file, capsys):
        assert main(["run", program_file, "--args", "0", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "return value: 45" in out
        assert "90.9%" in out

    def test_run_with_inputs(self, tmp_path, capsys):
        path = tmp_path / "echo.toy"
        path.write_text("func main(n) { return input() + input(); }")
        assert main(["run", str(path), "--args", "0", "--inputs", "20,22"]) == 0
        assert "return value: 42" in capsys.readouterr().out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out
        assert "tokenize" in out

    def test_evaluate_single_workload(self, capsys):
        assert main(["evaluate", "--workload", "interp"]) == 0
        out = capsys.readouterr().out
        assert "vrp" in out
        assert "profile" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrace:
    def test_trace_prints_timings_events_and_counters(self, program_file, capsys):
        assert main(["trace", program_file]) == 0
        out = capsys.readouterr().out
        assert "phase timings:" in out
        for phase in ("lex", "parse", "lower", "ssa", "propagate", "predict"):
            assert phase in out
        assert "event counts:" in out
        assert "lattice.transition" in out
        assert "counters:" in out
        assert "expr_evaluations" in out

    def test_trace_jsonl_dumps_the_event_stream(self, program_file, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["trace", program_file, "--jsonl", str(path)]) == 0
        lines = path.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "worklist.push" in kinds
        assert "lattice.transition" in kinds
        assert "branch.resolve" in kinds

    def test_trace_missing_file_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "/no/such/file.toy"])
        assert "no such file" in str(excinfo.value)


class TestExplain:
    def test_explain_names_controlling_range(self, program_file, capsys):
        assert main(["explain", program_file, "main/for1"]) == 0
        out = capsys.readouterr().out
        assert "P(true) = 90.9%" in out
        assert "predicted from value ranges" in out
        assert "{ 1[0:10:1] }" in out

    def test_explain_bare_label_and_whole_function(self, program_file, capsys):
        assert main(["explain", program_file, "for1"]) == 0
        assert "main/for1" in capsys.readouterr().out
        assert main(["explain", program_file, "main"]) == 0
        out = capsys.readouterr().out
        assert "main/for1" in out and "main/exit4" in out

    def test_explain_heuristic_fallback_branch(self, tmp_path, capsys):
        path = tmp_path / "bottom.toy"
        path.write_text(
            "func main(n) {\n"
            "  var v = input();\n"
            "  if (v < 0) { return 0; }\n"
            "  return 1;\n"
            "}\n"
        )
        assert main(["explain", str(path), "main"]) == 0
        out = capsys.readouterr().out
        assert "heuristic fallback (controlling range is bottom)" in out
        assert "Ball-Larus heuristic chain" in out

    def test_explain_unknown_branch_lists_known(self, program_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", program_file, "main/nope"])
        message = str(excinfo.value)
        assert "known branches" in message
        assert "main/for1" in message


class TestEmitMetrics:
    def test_predict_emit_metrics_writes_valid_report(
        self, program_file, tmp_path, capsys
    ):
        from repro.observability import validate_report_dict

        path = tmp_path / "metrics.json"
        assert main(["predict", program_file, "--emit-metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"metrics written to {path}" in out
        data = json.loads(path.read_text())
        assert validate_report_dict(data) is None
        assert data["schema_version"] == 8

    def test_emitted_probabilities_match_predict_output(
        self, program_file, tmp_path, capsys
    ):
        path = tmp_path / "metrics.json"
        assert main(["predict", program_file, "--emit-metrics", str(path)]) == 0
        capsys.readouterr()
        data = json.loads(path.read_text())
        by_label = {record["label"]: record for record in data["branches"]}
        assert by_label["for1"]["probability"] == pytest.approx(10 / 11)
        assert by_label["for1"]["source"] == "ranges"
        # The plain predict output quotes the same number.
        assert main(["predict", program_file]) == 0
        assert "90.9%" in capsys.readouterr().out

    def test_evaluate_emit_metrics_single_workload(self, tmp_path, capsys):
        from repro.observability import validate_report_dict

        path = tmp_path / "workload.json"
        assert (
            main(["evaluate", "--workload", "interp", "--emit-metrics", str(path)])
            == 0
        )
        data = json.loads(path.read_text())
        assert validate_report_dict(data) is None
        assert data["program"] == "interp"
        assert data["counters"]["expr_evaluations"] > 0


class TestErrorHandling:
    def test_missing_file_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "/no/such/file.toy"])
        assert "no such file" in str(excinfo.value)

    def test_syntax_error_exits_cleanly(self, tmp_path):
        path = tmp_path / "bad.toy"
        path.write_text("func main(n) { returm 0; }")
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", str(path)])
        assert "error:" in str(excinfo.value)
