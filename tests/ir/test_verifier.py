"""IR verifier tests: malformed functions must be rejected."""

import pytest

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Cmp, Copy, Jump, Phi, Return
from repro.ir.values import Constant, Temp
from repro.ir.verifier import VerificationError, verify_function


def minimal() -> Function:
    function = Function("f", ["n"])
    entry = function.add_block(BasicBlock("entry"))
    entry.append(Return(Constant(0)))
    return function


class TestStructural:
    def test_minimal_function_passes(self):
        verify_function(minimal())

    def test_empty_function_rejected(self):
        with pytest.raises(VerificationError):
            verify_function(Function("empty"))

    def test_unterminated_block_rejected(self):
        function = Function("f")
        block = function.add_block(BasicBlock("entry"))
        block.instructions.append(Copy(Temp("x"), Constant(1)))  # bypass append check
        with pytest.raises(VerificationError, match="not terminated"):
            verify_function(function)

    def test_dangling_target_rejected(self):
        function = Function("f")
        block = function.add_block(BasicBlock("entry"))
        block.append(Jump("ghost"))
        with pytest.raises(VerificationError, match="unknown block"):
            verify_function(function)

    def test_instructions_after_terminator_rejected(self):
        function = minimal()
        block = function.block("entry")
        block.instructions.append(Copy(Temp("x"), Constant(1)))
        with pytest.raises(VerificationError, match="after terminator"):
            verify_function(function)

    def test_phi_after_non_phi_rejected(self):
        function = Function("f", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        target = function.add_block(BasicBlock("target"))
        entry.append(Jump("target"))
        target.instructions.append(Copy(Temp("x"), Constant(1)))
        target.instructions.append(Phi(Temp("y"), [("entry", Constant(0))]))
        target.instructions.append(Return(Temp("y")))
        with pytest.raises(VerificationError, match="after non-phi"):
            verify_function(function)

    def test_phi_incoming_mismatch_rejected(self):
        function = Function("f", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        target = function.add_block(BasicBlock("target"))
        entry.append(Jump("target"))
        target.append(Phi(Temp("x"), [("elsewhere", Constant(0))]))
        target.append(Return(Temp("x")))
        with pytest.raises(VerificationError, match="predecessors"):
            verify_function(function)


class TestSSAChecks:
    def test_double_definition_rejected(self):
        function = minimal()
        block = function.block("entry")
        block.insert(0, Copy(Temp("x"), Constant(1)))
        block.insert(1, Copy(Temp("x"), Constant(2)))
        with pytest.raises(VerificationError, match="more than once"):
            verify_function(function, ssa=True)

    def test_use_before_definition_in_block_rejected(self):
        function = Function("f")
        entry = function.add_block(BasicBlock("entry"))
        entry.append(Copy(Temp("y"), Temp("x")))
        entry.append(Copy(Temp("x"), Constant(1)))
        entry.append(Return(Temp("y")))
        with pytest.raises(VerificationError):
            verify_function(function, ssa=True)

    def test_use_not_dominated_rejected(self):
        function = Function("f", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        left = function.add_block(BasicBlock("left"))
        right = function.add_block(BasicBlock("right"))
        join = function.add_block(BasicBlock("join"))
        entry.append(Cmp(Temp("c"), "lt", Temp("n.0"), Constant(0)))
        entry.append(Branch(Temp("c"), "left", "right"))
        left.append(Copy(Temp("x"), Constant(1)))
        left.append(Jump("join"))
        right.append(Jump("join"))
        join.append(Return(Temp("x")))  # x does not dominate join
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(function, ssa=True, param_names={"n.0"})

    def test_valid_ssa_accepted(self):
        function = Function("f", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        entry.append(Copy(Temp("x.0"), Temp("n.0")))
        entry.append(Return(Temp("x.0")))
        verify_function(function, ssa=True, param_names={"n.0"})

    def test_phi_incoming_dominance_checked(self):
        function = Function("f", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        a = function.add_block(BasicBlock("a"))
        b = function.add_block(BasicBlock("b"))
        join = function.add_block(BasicBlock("join"))
        entry.append(Cmp(Temp("c"), "lt", Temp("n.0"), Constant(0)))
        entry.append(Branch(Temp("c"), "a", "b"))
        a.append(Copy(Temp("va"), Constant(1)))
        a.append(Jump("join"))
        b.append(Jump("join"))
        # Incoming for edge b uses va, which is defined only in a.
        join.append(Phi(Temp("x"), [("a", Temp("va")), ("b", Temp("va"))]))
        join.append(Return(Temp("x")))
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(function, ssa=True, param_names={"n.0"})


def _branchy() -> Function:
    """entry: c = (n < 10); branch c ? then : other, both returning."""
    from repro.ir.instructions import Pi

    function = Function("g", ["n"])
    entry = function.add_block(BasicBlock("entry"))
    then = function.add_block(BasicBlock("then"))
    other = function.add_block(BasicBlock("other"))
    entry.append(Cmp(Temp("c"), "lt", Temp("n"), Constant(10)))
    entry.append(Branch(Temp("c"), "then", "other"))
    then.append(Return(Temp("n")))
    other.append(Return(Constant(0)))
    return function


class TestPiPlacement:
    def test_pi_on_branch_edge_accepted(self):
        from repro.ir.instructions import Pi

        function = _branchy()
        then = function.block("then")
        then.instructions.insert(
            0, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        verify_function(function)

    def test_pi_after_body_instruction_rejected(self):
        from repro.ir.instructions import Pi

        function = _branchy()
        then = function.block("then")
        then.instructions.insert(0, Copy(Temp("x"), Constant(1)))
        then.instructions.insert(
            1, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        with pytest.raises(VerificationError, match="after body instruction"):
            verify_function(function)

    def test_pi_needs_unique_predecessor(self):
        from repro.ir.instructions import Pi

        function = _branchy()
        join = function.add_block(BasicBlock("join"))
        join.instructions.insert(
            0, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        join.append(Return(Constant(0)))
        function.block("then").instructions[-1] = Jump("join")
        function.block("other").instructions[-1] = Jump("join")
        with pytest.raises(VerificationError, match="unique predecessor"):
            verify_function(function)

    def test_pi_in_entry_block_rejected(self):
        from repro.ir.instructions import Pi

        function = _branchy()
        function.block("entry").instructions.insert(
            0, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        with pytest.raises(VerificationError, match="unique predecessor"):
            verify_function(function)

    def test_pi_on_non_controlling_variable_rejected(self):
        from repro.ir.instructions import Pi

        function = _branchy()
        function.block("then").instructions.insert(
            0, Pi(Temp("m1"), Temp("m"), "lt", Constant(10))
        )
        with pytest.raises(
            VerificationError, match="not a controlling variable"
        ):
            verify_function(function)

    def test_pi_after_folded_branch_accepted(self):
        # fold_certain_branches rewrites Branch -> Jump but leaves the
        # target's assertions in place; they are still sound.
        from repro.ir.instructions import Pi

        function = _branchy()
        function.block("entry").instructions[-1] = Jump("then")
        del function.blocks["other"]
        function.block("then").instructions.insert(
            0, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        verify_function(function)

    def test_pi_through_copy_chain_accepted(self):
        # Copy propagation may leave the cmp reading a copy of the
        # pi's source; the verifier resolves the chain.
        from repro.ir.instructions import Pi

        function = Function("g", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        then = function.add_block(BasicBlock("then"))
        other = function.add_block(BasicBlock("other"))
        entry.append(Copy(Temp("m"), Temp("n")))
        entry.append(Cmp(Temp("c"), "lt", Temp("m"), Constant(10)))
        entry.append(Branch(Temp("c"), "then", "other"))
        then.append(Return(Temp("n")))
        other.append(Return(Constant(0)))
        then.instructions.insert(
            0, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        verify_function(function)

    def test_pi_in_unreachable_block_skipped(self):
        # Dead blocks keep their assertions until DCE removes them; the
        # placement rules only apply to reachable code.
        from repro.ir.instructions import Pi

        function = _branchy()
        dead = function.add_block(BasicBlock("dead"))
        dead.instructions.insert(
            0, Pi(Temp("n1"), Temp("n"), "lt", Constant(10))
        )
        dead.append(Return(Constant(0)))
        verify_function(function)
