"""Driving the diagnostics rules over a module and collecting a report.

The engine is a *consumer* of value range propagation: it runs the
predictor once (or accepts an existing :class:`ModulePrediction`) and
evaluates every rule against the converged results.  Findings flow into
the active tracer's event stream (kind ``diagnostic.finding``) so
``--trace`` sessions and ``--emit-metrics`` reports see them alongside
the engine's own events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import VRPConfig
from repro.core.interprocedural import ModulePrediction, analyse_module
from repro.diagnostics.findings import Finding, severity_rank
from repro.diagnostics.rules import all_findings
from repro.ir import prepare_module
from repro.ir.function import Module
from repro.observability import events as obs_events
from repro.observability import tracer as tracing


@dataclass
class CheckReport:
    """All findings for one program, sorted most-severe first."""

    program: str
    findings: List[Finding] = field(default_factory=list)

    def by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def worst_severity(self) -> Optional[str]:
        return self.findings[0].severity if self.findings else None

    def fails(self, fail_on: str) -> bool:
        """Whether this report should fail a ``--fail-on`` gate."""
        if fail_on == "never":
            return False
        threshold = severity_rank(fail_on)
        return any(
            severity_rank(f.severity) <= threshold for f in self.findings
        )


def check_module(
    module: Module,
    prediction: ModulePrediction,
    program: str = "module",
) -> CheckReport:
    """Evaluate every diagnostics rule against an existing prediction."""
    tracer = tracing.active()
    trace = tracer if tracer.enabled else None
    findings: List[Finding] = []
    for name, function in module.functions.items():
        function_prediction = prediction.functions.get(name)
        if function_prediction is None:
            continue
        findings.extend(all_findings(function, function_prediction))
    findings.sort(key=Finding.sort_key)
    if trace is not None:
        for finding in findings:
            trace.emit(
                obs_events.DiagnosticFinding(
                    function=finding.function,
                    rule=finding.rule,
                    severity=finding.severity,
                    block=finding.block,
                    line=finding.line,
                    message=finding.message,
                )
            )
    return CheckReport(program=program, findings=findings)


def check_source(
    source: str,
    config: Optional[VRPConfig] = None,
    program: str = "module",
) -> CheckReport:
    """Compile, analyse and check toy-language source in one call."""
    from repro.lang import compile_source

    module = compile_source(source, module_name=program)
    return check_prepared(module, config=config, program=program)


def check_prepared(
    module: Module,
    config: Optional[VRPConfig] = None,
    program: str = "module",
) -> CheckReport:
    """Prepare (SSA) and analyse a lowered module, then run the rules."""
    config = config or VRPConfig()
    tracer = tracing.active()
    trace = tracer if tracer.enabled else None
    if trace is not None:
        with trace.span("check"):
            ssa_infos = prepare_module(module)
            prediction = analyse_module(module, ssa_infos, config=config)
            return check_module(module, prediction, program=program)
    ssa_infos = prepare_module(module)
    prediction = analyse_module(module, ssa_infos, config=config)
    return check_module(module, prediction, program=program)
