"""Figure 4: the paper's worked example, regenerated.

Prints the value ranges and branch probabilities of the Figure 2
program and asserts the paper's exact numbers (91% / 20% / 30%), while
benchmarking a full analysis run.
"""

import pytest

from benchmarks.conftest import emit, emit_metrics
from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis
from repro.lang import compile_source
from repro.observability import trace_analysis, validate_report_dict

PAPER_FIGURE_2 = """
func main(n) {
  var y = 0;
  for (x = 0; x < 10; x = x + 1) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { n = n + 1; }
  }
  return n;
}
"""


def run_analysis():
    module = compile_source(PAPER_FIGURE_2)
    function = module.function("main")
    info = prepare_for_analysis(function)
    return analyse_function(function, info)


def test_figure4_worked_example(benchmark, results_dir):
    prediction = benchmark(run_analysis)

    lines = ["Figure 4 reproduction: paper's worked example", ""]
    lines.append("Value ranges (SSA name: paper name):")
    paper_names = {
        "x.0": "x0", "x.1": "x1", "x.3": "x2", "x.4": "x3", "x.6": "x4",
        "x.7": "x5", "y.0": "y0", "y.2": "y1", "y.4": "y2",
    }
    for ssa_name, paper_name in paper_names.items():
        lines.append(f"  {paper_name:3s} ({ssa_name:5s}) = {prediction.values[ssa_name]}")
    lines.append("")
    lines.append("Branch probabilities (paper: x1<10 91%, x2>7 20%, y2==1 30%):")
    for label, probability in sorted(prediction.branch_probability.items()):
        lines.append(f"  {label:8s} {probability:6.2%}")
    emit(results_dir, "fig4_example.txt", "\n".join(lines))

    assert prediction.branch_probability["for1"] == pytest.approx(10 / 11)
    assert prediction.branch_probability["body2"] == pytest.approx(0.2)
    assert prediction.branch_probability["join7"] == pytest.approx(0.3)
    assert str(prediction.values["x.1"]) == "{ 1[0:10:1] }"
    assert str(prediction.values["x.3"]) == "{ 1[0:9:1] }"


def test_figure4_metrics_report(results_dir):
    """The worked example as a machine-readable BENCH_*.json report."""
    session = trace_analysis(PAPER_FIGURE_2, module_name="fig4")
    report = session.metrics_report()
    path = emit_metrics(results_dir, "fig4_metrics", report)

    assert path.exists()
    assert validate_report_dict(report.to_dict()) is None
    by_label = {record["label"]: record for record in report.branches}
    assert by_label["for1"]["probability"] == pytest.approx(10 / 11)
    assert by_label["body2"]["probability"] == pytest.approx(0.2)
    assert by_label["join7"]["probability"] == pytest.approx(0.3)
    assert all(record["source"] == "ranges" for record in report.branches)
    assert report.phases["propagate"]["count"] >= 1
