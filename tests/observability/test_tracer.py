"""Tracer mechanics: spans, the event stream, and the ambient context."""

import time

import pytest

from repro.observability.events import WorklistPush
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    active,
    use,
)


def _event(item: str = "x") -> WorklistPush:
    return WorklistPush(function="f", list_name="flow", item=item)


class TestSpans:
    def test_span_times_the_region(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.002)
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.end is not None
        assert record.seconds >= 0.002

    def test_spans_nest_and_remember_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        outer, first, second = tracer.spans
        assert outer.depth == 0 and outer.parent is None
        assert first.depth == 1 and first.parent == outer.index
        assert second.depth == 1 and second.parent == outer.index

    def test_open_span_reports_zero_seconds(self):
        tracer = Tracer()
        manager = tracer.span("open")
        manager.__enter__()
        assert tracer.spans[0].seconds == 0.0
        manager.__exit__(None, None, None)
        assert tracer.spans[0].seconds > 0.0

    def test_phase_timings_aggregate_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("derive"):
                pass
        with tracer.span("propagate"):
            pass
        timings = tracer.phase_timings()
        assert timings["derive"].count == 3
        assert timings["propagate"].count == 1
        assert timings["derive"].seconds >= 0.0

    def test_phase_timings_skip_open_spans(self):
        tracer = Tracer()
        manager = tracer.span("open")
        manager.__enter__()
        assert "open" not in tracer.phase_timings()
        manager.__exit__(None, None, None)
        assert tracer.phase_timings()["open"].count == 1

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("boom")
        assert tracer.spans[0].end is not None
        with tracer.span("after"):
            pass
        assert tracer.spans[1].depth == 0  # stack unwound correctly


class TestEvents:
    def test_emit_records_and_counts(self):
        tracer = Tracer()
        tracer.emit(_event("a"))
        tracer.emit(_event("b"))
        assert [e.item for e in tracer.events] == ["a", "b"]
        assert tracer.event_counts == {"worklist.push": 2}

    def test_events_of_accepts_kind_string_and_class(self):
        tracer = Tracer()
        tracer.emit(_event())
        assert tracer.events_of("worklist.push") == tracer.events
        assert tracer.events_of(WorklistPush) == tracer.events
        assert tracer.events_of("worklist.pop") == []

    def test_max_events_caps_the_stream(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.emit(_event(str(index)))
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3
        assert tracer.event_counts["worklist.push"] == 5  # counts keep going

    def test_record_events_false_keeps_only_counts(self):
        tracer = Tracer(record_events=False)
        tracer.emit(_event())
        assert tracer.events == []
        assert tracer.event_counts == {"worklist.push": 1}


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("anything") as span:
            assert span is None
        tracer.emit(_event())
        assert tracer.spans == []
        assert tracer.events == []
        assert tracer.event_counts == {}
        assert tracer.phase_timings() == {}
        assert tracer.events_of("worklist.push") == []


class TestAmbientContext:
    def test_default_is_the_null_tracer(self):
        assert active() is NULL_TRACER
        assert active().enabled is False

    def test_use_scopes_the_active_tracer(self):
        tracer = Tracer()
        with use(tracer) as installed:
            assert installed is tracer
            assert active() is tracer
        assert active() is NULL_TRACER

    def test_use_nests(self):
        outer, inner = Tracer(), Tracer()
        with use(outer):
            with use(inner):
                assert active() is inner
            assert active() is outer
