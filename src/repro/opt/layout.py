"""Profile-guided code layout from predicted branch probabilities.

One of the paper's headline applications: "coding likely paths as
straight-line code with branches to less likely code placed
out-of-line" (Pettis–Hansen style).  The bottom-up chaining algorithm
consumes *predicted* edge frequencies (from VRP or any predictor) and
emits a block order; the quality metric is the fraction of dynamic
control transfers that become fall-throughs, evaluated against a real
execution profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.cfg import CFG
from repro.ir.function import Function

Edge = Tuple[str, str]


def chain_layout(function: Function, edge_frequency: Dict[Edge, float]) -> List[str]:
    """Pettis–Hansen bottom-up chaining.

    Edges are visited hottest-first; an edge merges two chains when its
    source is a chain tail and its destination a chain head.  Chains are
    then emitted starting with the entry's chain, hottest-connection
    first.
    """
    cfg = CFG(function)
    blocks = list(cfg.reachable())
    chain_of: Dict[str, List[str]] = {label: [label] for label in blocks}

    hot_edges = sorted(
        (edge for edge in cfg.edges() if edge[0] in chain_of and edge[1] in chain_of),
        key=lambda edge: -edge_frequency.get(edge, 0.0),
    )
    for src, dst in hot_edges:
        src_chain = chain_of[src]
        dst_chain = chain_of[dst]
        if src_chain is dst_chain:
            continue
        if src_chain[-1] != src or dst_chain[0] != dst:
            continue  # only tail-to-head merges keep the fall-through
        merged = src_chain + dst_chain
        for label in merged:
            chain_of[label] = merged

    # Unique chains, entry's chain first, then by total heat.
    seen: List[int] = []
    chains: List[List[str]] = []
    for label in blocks:
        chain = chain_of[label]
        if id(chain) not in seen:
            seen.append(id(chain))
            chains.append(chain)
    entry = function.entry_label

    def chain_heat(chain: List[str]) -> float:
        return sum(
            edge_frequency.get((a, b), 0.0)
            for a in chain
            for b in cfg.successors[a]
        )

    chains.sort(key=lambda chain: (entry not in chain, -chain_heat(chain)))
    return [label for chain in chains for label in chain]


def fallthrough_fraction(
    layout: List[str],
    dynamic_edge_counts: Dict[Edge, int],
) -> float:
    """Fraction of dynamic control transfers that fall through.

    ``dynamic_edge_counts`` comes from a real (interpreter) run; an edge
    falls through when its destination is laid out immediately after its
    source.
    """
    position = {label: index for index, label in enumerate(layout)}
    total = 0
    fallthrough = 0
    for (src, dst), count in dynamic_edge_counts.items():
        if src not in position or dst not in position:
            continue
        total += count
        if position[dst] == position[src] + 1:
            fallthrough += count
    return fallthrough / total if total else 0.0


def layout_quality(
    function: Function,
    predicted_edge_frequency: Dict[Edge, float],
    dynamic_edge_counts: Dict[Edge, int],
) -> Tuple[float, float]:
    """(original order fall-through fraction, optimised fraction)."""
    original = list(function.blocks)
    optimised = chain_layout(function, predicted_edge_frequency)
    return (
        fallthrough_fraction(original, dynamic_edge_counts),
        fallthrough_fraction(optimised, dynamic_edge_counts),
    )
