"""Traced front-end pipelines: phase spans around the whole toolchain.

:func:`compile_source_traced` mirrors :func:`repro.lang.compile_source`
but runs each front-end stage under its own span (``lex`` / ``parse`` /
``lower``); preparation and the engine add ``cfg-cleanup`` / ``assert``
/ ``ssa`` / ``propagate`` / ``derive`` / ``predict`` spans of their
own, so one :func:`trace_analysis` call yields the full phase-timing
breakdown the paper's Figures 5/6 work counts cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import VRPConfig
from repro.core.interprocedural import ModulePrediction
from repro.core.predictor import VRPPredictor
from repro.ir import prepare_module
from repro.ir.function import Module
from repro.ir.ssa import SSAInfo
from repro.lang.lexer import tokenize
from repro.lang.lowering import lower_program
from repro.lang.parser import Parser
from repro.observability.metrics import MetricsReport, build_metrics_report
from repro.observability.tracer import Tracer, active, use


def compile_source_traced(source: str, module_name: str = "module") -> Module:
    """``repro.lang.compile_source`` with per-stage spans."""
    tracer = active()
    with tracer.span("lex"):
        tokens = tokenize(source)
    with tracer.span("parse"):
        program = Parser(tokens).parse_program()
    with tracer.span("lower"):
        return lower_program(program, module_name=module_name)


@dataclass
class TraceSession:
    """Everything one traced analysis run produced."""

    module: Module
    ssa_infos: Dict[str, SSAInfo]
    prediction: ModulePrediction
    tracer: Tracer

    def metrics_report(self, program: Optional[str] = None) -> MetricsReport:
        return build_metrics_report(
            self.prediction,
            self.tracer,
            program=program or self.module.name,
        )


def trace_analysis(
    source: str,
    module_name: str = "module",
    config: Optional[VRPConfig] = None,
    interprocedural: bool = True,
    tracer: Optional[Tracer] = None,
    record_events: bool = True,
) -> TraceSession:
    """Compile, prepare, and predict one program under a recording tracer."""
    if tracer is None:
        tracer = Tracer(record_events=record_events)
    with use(tracer):
        module = compile_source_traced(source, module_name=module_name)
        ssa_infos = prepare_module(module)
        predictor = VRPPredictor(config=config, interprocedural=interprocedural)
        prediction = predictor.predict_module(module, ssa_infos)
    return TraceSession(
        module=module,
        ssa_infos=ssa_infos,
        prediction=prediction,
        tracer=tracer,
    )
