"""Edge cases of the bounds-check classifiers.

``classify_index`` (hull-level, used by the elimination pass) and
``classify_access`` (component-wise, used by diagnostics) must agree on
the easy cases and stay conservative on the hard ones: symbolic bounds,
strided progressions, missing sizes, ⊤/⊥ lattice extremes.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import Bound, NEG_INF, POS_INF
from repro.core.ranges import RangeError, StridedRange
from repro.core.rangeset import RangeSet
from repro.opt import AccessClassification, classify_access
from repro.opt.boundscheck import SAFE, UNKNOWN, UNSAFE, classify_index


def _set(*ranges) -> RangeSet:
    return RangeSet.from_ranges(list(ranges))


class TestClassifyIndex:
    def test_no_size_is_unknown(self):
        assert classify_index(RangeSet.constant(3), None) == UNKNOWN

    def test_top_and_bottom_are_unknown(self):
        assert classify_index(RangeSet.top(), 10) == UNKNOWN
        assert classify_index(RangeSet.bottom(), 10) == UNKNOWN

    def test_inside_is_safe(self):
        assert classify_index(_set(StridedRange.span(1.0, 0, 9)), 10) == SAFE

    def test_entirely_negative_is_unsafe(self):
        assert classify_index(_set(StridedRange.span(1.0, -5, -1)), 10) == UNSAFE

    def test_entirely_above_is_unsafe(self):
        assert classify_index(_set(StridedRange.span(1.0, 10, 12)), 10) == UNSAFE

    def test_straddling_is_unknown(self):
        assert classify_index(_set(StridedRange.span(1.0, -2, 3)), 10) == UNKNOWN

    def test_symbolic_upper_bound_is_unknown(self):
        # [0 : n-1] against size 10: n is unknown, so no verdict.
        index = _set(
            StridedRange(1.0, Bound.number(0), Bound.symbolic("n", -1), 1)
        )
        assert classify_index(index, 10) == UNKNOWN

    def test_symbolic_against_symbolic_size_stays_unknown(self):
        index = _set(StridedRange.symbol(1.0, "n"))
        assert classify_index(index, 10) == UNKNOWN

    def test_infinite_upper_bound_is_unknown(self):
        index = _set(StridedRange(1.0, Bound.number(0), Bound.number(POS_INF), 1))
        assert classify_index(index, 10) == UNKNOWN

    def test_infinite_lower_bound_is_unknown(self):
        index = _set(StridedRange(1.0, Bound.number(NEG_INF), Bound.number(5), 1))
        assert classify_index(index, 10) == UNKNOWN


class TestRangeConstruction:
    def test_negative_stride_raises(self):
        with pytest.raises(RangeError):
            StridedRange.span(1.0, 0, 10, stride=-2)

    def test_inverted_range_raises(self):
        with pytest.raises(RangeError):
            StridedRange.span(1.0, 10, 0)

    def test_empty_range_set_is_bottom(self):
        assert RangeSet.from_ranges([]).is_bottom
        # ...and a ⊥ index cannot be classified.
        assert classify_index(RangeSet.from_ranges([]), 10) == UNKNOWN


class TestClassifyAccess:
    def test_no_size(self):
        verdict = classify_access(RangeSet.constant(3), None)
        assert verdict == AccessClassification(UNKNOWN, False, 0.0)

    def test_definite_oob_single(self):
        verdict = classify_access(RangeSet.constant(10), 10)
        assert verdict.classification == UNSAFE
        assert verdict.definitely_oob
        assert verdict.oob_mass == 1.0

    def test_safe_inside(self):
        verdict = classify_access(_set(StridedRange.span(1.0, 0, 9)), 10)
        assert verdict == AccessClassification(SAFE, False, 0.0)

    def test_mixed_components_partial_mass(self):
        # 0.25 on the out-of-bounds constant, 0.75 safely inside.
        index = _set(
            StridedRange.single(0.25, 15),
            StridedRange.span(0.75, 0, 9),
        )
        verdict = classify_access(index, 10)
        assert verdict.classification == UNSAFE
        assert not verdict.definitely_oob
        assert verdict.oob_mass == pytest.approx(0.25)

    def test_straddling_component_contributes_fractional_mass(self):
        # [-2:7] has 10 values, 2 below zero.
        verdict = classify_access(_set(StridedRange.span(1.0, -2, 7)), 10)
        assert verdict.classification == UNKNOWN
        assert verdict.oob_mass == pytest.approx(0.2)

    def test_strided_component_counts_progression_members(self):
        # {0, 4, 8, 12}: 4 members, 1 outside [0, 10).
        verdict = classify_access(
            _set(StridedRange.span(1.0, 0, 12, stride=4)), 10
        )
        assert verdict.classification == UNKNOWN
        assert verdict.oob_mass == pytest.approx(0.25)

    def test_widened_infinite_range_contributes_no_mass(self):
        # A widened [0:+inf] is an over-approximation, not a proof that
        # large indices occur.
        index = _set(StridedRange(1.0, Bound.number(0), Bound.number(POS_INF), 1))
        verdict = classify_access(index, 10)
        assert verdict.classification == UNKNOWN
        assert verdict.oob_mass == 0.0
        assert not verdict.definitely_oob

    def test_symbolic_component_is_undecided_not_oob(self):
        index = _set(
            StridedRange(1.0, Bound.number(0), Bound.symbolic("n", -1), 1)
        )
        verdict = classify_access(index, 10)
        assert verdict.classification == UNKNOWN
        assert verdict.oob_mass == 0.0

    def test_all_components_outside_is_definite(self):
        index = _set(
            StridedRange.span(0.5, -4, -1),
            StridedRange.span(0.5, 20, 25),
        )
        verdict = classify_access(index, 10)
        assert verdict.classification == UNSAFE
        assert verdict.definitely_oob
        assert verdict.oob_mass == pytest.approx(1.0)

    def test_negative_single_is_definite(self):
        verdict = classify_access(RangeSet.constant(-1), 10)
        assert verdict.classification == UNSAFE
        assert verdict.definitely_oob
