"""Finding model and rule catalogue for the static diagnostics engine.

A :class:`Finding` is one fact the range analysis proved about the
program: a branch that cannot be taken, an index that walks off an
array, a divisor that includes zero.  Findings carry a machine-readable
evidence payload (the weighted range sets involved, serialised by
:func:`rangeset_payload`) so downstream tooling -- the SARIF export,
the metrics report, tests -- can inspect *why* a rule fired without
re-running the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.rangeset import RangeSet

# Severities, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


def severity_rank(severity: str) -> int:
    """Smaller is more severe; unknown severities sort last."""
    return _SEVERITY_RANK.get(severity, len(SEVERITIES))


@dataclass(frozen=True)
class Rule:
    """One diagnostics rule: stable id, default severity, catalogue text."""

    id: str
    default_severity: str
    summary: str
    description: str


#: The rule catalogue.  Ids are stable (they appear in SARIF output and
#: suppression comments); descriptions are what ``docs/DIAGNOSTICS.md``
#: renders.  Severity may be tightened or relaxed per finding (e.g. a
#: *possible* division by zero is a warning, a definite one an error).
RULES: Tuple[Rule, ...] = (
    Rule(
        id="dead-branch",
        default_severity=WARNING,
        summary="conditional branch always goes the same way",
        description=(
            "The controlling range proves this branch's probability is "
            "exactly 0 or 1, so one side is dead code.  Heuristic "
            "probabilities never trigger this rule -- only range proofs."
        ),
    ),
    Rule(
        id="array-bounds",
        default_severity=ERROR,
        summary="array index provably out of bounds",
        description=(
            "The index range lies (partly) outside [0, size).  When every "
            "component of the range is outside, the access always traps "
            "(error); when only part of the probability mass is outside, "
            "the access traps on some executions (warning).  Widened "
            "(infinite) ranges never contribute out-of-bounds mass."
        ),
    ),
    Rule(
        id="div-by-zero",
        default_severity=ERROR,
        summary="division or modulo by zero",
        description=(
            "The divisor's range contains zero.  A divisor that is "
            "exactly the constant 0 is an error; a range that merely "
            "includes 0 with positive probability is a warning."
        ),
    ),
    Rule(
        id="unreachable-block",
        default_severity=WARNING,
        summary="block survives in the CFG but can never execute",
        description=(
            "The block is reachable by CFG edges but every path to it "
            "crosses an edge the ranges prove has frequency 0."
        ),
    ),
    Rule(
        id="zero-trip-loop",
        default_severity=WARNING,
        summary="loop body never executes",
        description=(
            "The loop's entry condition is provably false on first "
            "evaluation: the edge from the header into the body has "
            "frequency 0 while the header itself executes."
        ),
    ),
    Rule(
        id="non-terminating-loop",
        default_severity=ERROR,
        summary="loop provably never exits",
        description=(
            "Either the loop has no exit edge (and no return) at all, or "
            "every exit edge has a range-proven frequency of 0 while the "
            "header executes.  Evidence cites the loop-carried ranges "
            "from induction-template derivation."
        ),
    ),
    Rule(
        id="uninit-value",
        default_severity=ERROR,
        summary="use of an uninitialised (undefined) value",
        description=(
            "A value read on some executed path has no definition there "
            "(its range is ⊥ by fiat).  A direct use in an executed "
            "block is an error; a phi that merely merges an undefined "
            "value over an executable edge is a warning."
        ),
    ),
    Rule(
        id="unreachable-function",
        default_severity=WARNING,
        summary="function is never called from the entry point",
        description=(
            "Call-graph reachability from the module entry (main) never "
            "visits this function: no chain of call sites leads to it, "
            "so the whole body is dead code.  Calls through undefined "
            "callees cannot hide an edge -- only defined functions "
            "participate in the call graph."
        ),
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}


def rangeset_payload(rangeset: RangeSet) -> dict:
    """JSON-safe serialisation of a weighted strided range set."""
    if rangeset.is_top:
        return {"kind": "top", "ranges": []}
    if rangeset.is_bottom:
        return {"kind": "bottom", "ranges": []}
    return {
        "kind": "set",
        "ranges": [
            {
                "probability": r.probability,
                "lo": str(r.lo),
                "hi": str(r.hi),
                "stride": r.stride,
            }
            for r in rangeset.ranges
        ],
    }


@dataclass
class Finding:
    """One diagnostic finding, ready for any of the three renderers."""

    rule: str
    severity: str
    message: str
    function: str
    block: str
    line: Optional[int] = None
    evidence: Dict[str, object] = field(default_factory=dict)
    #: Cross-function provenance: the call sites whose summaries the
    #: proof depends on, as ``{"function", "block", "line", "message"}``
    #: dicts.  Rendered as SARIF ``relatedLocations``.
    related: List[Dict[str, object]] = field(default_factory=list)

    def sort_key(self) -> tuple:
        return (
            severity_rank(self.severity),
            self.rule,
            self.function,
            self.line if self.line is not None else 1 << 30,
            self.block,
            self.message,
        )

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "line": self.line,
            "evidence": self.evidence,
        }
        if self.related:
            out["related"] = self.related
        return out
