"""Reference interpreter for SSA-form IR modules, with edge profiling.

This is the reproduction's stand-in for running instrumented binaries:
executing a module counts every block, CFG edge and branch direction,
which is exactly the information execution profiling collects (the
paper's strongest comparison line), and also defines the *ground truth*
branch behaviour predictors are scored against.

Semantics: unbounded Python integers, floor division/modulo, arithmetic
shifts.  ``input()`` pops the next element of the run's input vector
(0 once exhausted).  Assertion (Pi) nodes are checked: a violated
assertion indicates a compiler bug and raises immediately.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.values import Constant, Temp, Undef, Value


class InterpreterError(Exception):
    """Runtime error in the interpreted program (trap, OOB, bad call)."""


class StepLimitExceeded(InterpreterError):
    """The program ran longer than the configured step budget."""


class AssertionViolation(InterpreterError):
    """A Pi node's asserted relation did not hold (compiler bug)."""


class ExecutionResult:
    """Return value plus the full execution profile of one run."""

    def __init__(self) -> None:
        self.return_value: Optional[int] = None
        self.steps = 0
        #: (function, block) -> execution count
        self.block_counts: Dict[Tuple[str, str], int] = {}
        #: (function, src, dst) -> traversal count
        self.edge_counts: Dict[Tuple[str, str, str], int] = {}
        #: (function, branch block) -> [taken, not taken]
        self.branch_counts: Dict[Tuple[str, str], List[int]] = {}
        #: function -> number of calls
        self.call_counts: Dict[str, int] = {}
        #: (function, ssa name) -> set of observed runtime values
        #: (only populated when the interpreter collects values)
        self.observed_values: Dict[Tuple[str, str], set] = {}

    def branch_probability(self, function: str, label: str) -> Optional[float]:
        counts = self.branch_counts.get((function, label))
        if counts is None:
            return None
        total = counts[0] + counts[1]
        if total == 0:
            return None
        return counts[0] / total

    def merge(self, other: "ExecutionResult") -> None:
        """Accumulate another run's counts into this profile."""
        self.steps += other.steps
        for key, count in other.block_counts.items():
            self.block_counts[key] = self.block_counts.get(key, 0) + count
        for key, count in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + count
        for key, counts in other.branch_counts.items():
            mine = self.branch_counts.setdefault(key, [0, 0])
            mine[0] += counts[0]
            mine[1] += counts[1]
        for key, count in other.call_counts.items():
            self.call_counts[key] = self.call_counts.get(key, 0) + count


class _Frame:
    """One activation record."""

    __slots__ = (
        "function",
        "env",
        "arrays",
        "label",
        "prev_label",
        "index",
        "return_target",
    )

    def __init__(self, function: Function, return_target: Optional[Temp]):
        self.function = function
        self.env: Dict[str, int] = {}
        self.arrays: Dict[str, List[int]] = {
            name: [0] * (size or 0) for name, size in function.arrays.items()
        }
        self.label = function.entry_label
        self.prev_label: Optional[str] = None
        self.index = 0
        # Where the caller wants the return value.
        self.return_target = return_target


class Interpreter:
    """Executes a module's ``main`` and collects the execution profile."""

    def __init__(
        self,
        module: Module,
        max_steps: int = 5_000_000,
        check_assertions: bool = True,
        collect_values: bool = False,
    ):
        self.module = module
        self.max_steps = max_steps
        self.check_assertions = check_assertions
        # When set, every SSA assignment is recorded in
        # ``result.observed_values[(function, name)]`` -- used by the
        # soundness tests to check runtime values against VRP's ranges.
        self.collect_values = collect_values

    def run(
        self,
        args: Optional[List[int]] = None,
        input_values: Optional[Iterable[int]] = None,
        entry: str = "main",
    ) -> ExecutionResult:
        result = ExecutionResult()
        input_iter = iter(input_values or ())
        main = self.module.function(entry)
        args = list(args or [])
        if len(args) != len(main.params):
            raise InterpreterError(
                f"{entry} expects {len(main.params)} args, got {len(args)}"
            )
        frames: List[_Frame] = []
        frame = _Frame(main, None)
        self._bind_params(frame, args, result)
        frames.append(frame)
        self._enter_block(frame, result)

        while frames:
            frame = frames[-1]
            block = frame.function.block(frame.label)
            if frame.index >= len(block.instructions):
                raise InterpreterError(
                    f"fell off block {frame.label} in {frame.function.name}"
                )
            instr = block.instructions[frame.index]
            result.steps += 1
            if result.steps > self.max_steps:
                raise StepLimitExceeded(f"exceeded {self.max_steps} steps")

            if isinstance(instr, (Jump, Branch)):
                self._take_edge(frame, instr, result)
            elif isinstance(instr, Return):
                value = self._eval(frame, instr.value)
                frames.pop()
                if frames:
                    caller = frames[-1]
                    if frame.return_target is not None:
                        caller.env[frame.return_target.name] = value
                        if self.collect_values:
                            self._record(result, caller, frame.return_target.name, value)
                    caller.index += 1
                else:
                    result.return_value = value
            elif isinstance(instr, Call):
                callee = self.module.functions.get(instr.callee)
                if callee is None:
                    raise InterpreterError(f"call to unknown function {instr.callee!r}")
                call_args = [self._eval(frame, a) for a in instr.args]
                if len(call_args) != len(callee.params):
                    raise InterpreterError(
                        f"{instr.callee} expects {len(callee.params)} args"
                    )
                result.call_counts[instr.callee] = (
                    result.call_counts.get(instr.callee, 0) + 1
                )
                new_frame = _Frame(callee, instr.dest)
                self._bind_params(new_frame, call_args, result)
                frames.append(new_frame)
                if len(frames) > 10_000:
                    raise InterpreterError("call stack overflow (depth 10000)")
                self._enter_block(new_frame, result)
            else:
                self._execute_simple(frame, instr, input_iter, result)
                frame.index += 1
        return result

    # -- helpers ------------------------------------------------------------

    def _bind_params(self, frame: _Frame, args: List[int],
                     result: Optional[ExecutionResult] = None) -> None:
        # SSA parameter names are "<param>.0" by construction.
        for param, value in zip(frame.function.params, args):
            frame.env[f"{param}.0"] = int(value)
            frame.env[param] = int(value)  # pre-SSA fallback
            if self.collect_values and result is not None:
                self._record(result, frame, f"{param}.0", int(value))

    def _enter_block(self, frame: _Frame, result: ExecutionResult) -> None:
        key = (frame.function.name, frame.label)
        result.block_counts[key] = result.block_counts.get(key, 0) + 1
        block = frame.function.block(frame.label)
        phis = block.phis()
        if phis:
            if frame.prev_label is None:
                raise InterpreterError(
                    f"phi in entry block {frame.label} of {frame.function.name}"
                )
            # Parallel evaluation: all phis read the pre-transfer environment.
            staged = [
                (phi.dest.name, self._eval(frame, phi.value_for(frame.prev_label)))
                for phi in phis
            ]
            for name, value in staged:
                frame.env[name] = value
                if self.collect_values:
                    self._record(result, frame, name, value)
        frame.index = len(phis)

    def _take_edge(self, frame: _Frame, instr: Instruction, result: ExecutionResult) -> None:
        func_name = frame.function.name
        if isinstance(instr, Jump):
            target = instr.target
        else:
            assert isinstance(instr, Branch)
            taken = self._eval(frame, instr.cond) != 0
            counts = result.branch_counts.setdefault((func_name, frame.label), [0, 0])
            counts[0 if taken else 1] += 1
            target = instr.true_target if taken else instr.false_target
        edge_key = (func_name, frame.label, target)
        result.edge_counts[edge_key] = result.edge_counts.get(edge_key, 0) + 1
        frame.prev_label = frame.label
        frame.label = target
        self._enter_block(frame, result)

    def _execute_simple(self, frame: _Frame, instr: Instruction, input_iter,
                        result: Optional[ExecutionResult] = None) -> None:
        if isinstance(instr, Copy):
            frame.env[instr.dest.name] = self._eval(frame, instr.src)
        elif isinstance(instr, BinOp):
            lhs = self._eval(frame, instr.lhs)
            rhs = self._eval(frame, instr.rhs)
            frame.env[instr.dest.name] = _apply_binop(instr.op, lhs, rhs)
        elif isinstance(instr, UnOp):
            operand = self._eval(frame, instr.operand)
            frame.env[instr.dest.name] = -operand if instr.op == "neg" else int(not operand)
        elif isinstance(instr, Cmp):
            lhs = self._eval(frame, instr.lhs)
            rhs = self._eval(frame, instr.rhs)
            frame.env[instr.dest.name] = int(_apply_cmp(instr.op, lhs, rhs))
        elif isinstance(instr, Pi):
            value = self._eval(frame, instr.src)
            if self.check_assertions:
                bound = self._eval(frame, instr.bound)
                if not _apply_cmp(instr.op, value, bound):
                    raise AssertionViolation(
                        f"{instr!r}: {value} {instr.op} {bound} does not hold"
                    )
            frame.env[instr.dest.name] = value
        elif isinstance(instr, Load):
            array = frame.arrays.get(instr.array)
            if array is None:
                raise InterpreterError(f"unknown array {instr.array!r}")
            index = self._eval(frame, instr.index)
            if not 0 <= index < len(array):
                raise InterpreterError(
                    f"load {instr.array}[{index}] out of bounds (size {len(array)})"
                )
            frame.env[instr.dest.name] = array[index]
        elif isinstance(instr, Store):
            array = frame.arrays.get(instr.array)
            if array is None:
                raise InterpreterError(f"unknown array {instr.array!r}")
            index = self._eval(frame, instr.index)
            if not 0 <= index < len(array):
                raise InterpreterError(
                    f"store {instr.array}[{index}] out of bounds (size {len(array)})"
                )
            array[index] = self._eval(frame, instr.value)
        elif isinstance(instr, Input):
            frame.env[instr.dest.name] = int(next(input_iter, 0))
        else:
            raise InterpreterError(f"cannot execute {instr!r}")
        if self.collect_values and result is not None:
            written = instr.result
            if written is not None and written.name in frame.env:
                self._record(result, frame, written.name, frame.env[written.name])

    def _record(self, result: ExecutionResult, frame: _Frame, name: str, value: int) -> None:
        key = (frame.function.name, name)
        bucket = result.observed_values.setdefault(key, set())
        if len(bucket) < 4096:  # bound memory on long runs
            bucket.add(value)

    def _eval(self, frame: _Frame, value: Value) -> int:
        if isinstance(value, Constant):
            return int(value.value)
        if isinstance(value, Temp):
            if value.name not in frame.env:
                raise InterpreterError(
                    f"read of undefined {value.name} in {frame.function.name}"
                )
            return frame.env[value.name]
        if isinstance(value, Undef):
            return 0
        raise InterpreterError(f"cannot evaluate {value!r}")


def _apply_binop(op: str, lhs: int, rhs: int) -> int:
    if op == "add":
        return lhs + rhs
    if op == "sub":
        return lhs - rhs
    if op == "mul":
        return lhs * rhs
    if op == "div":
        if rhs == 0:
            raise InterpreterError("division by zero")
        return lhs // rhs
    if op == "mod":
        if rhs == 0:
            raise InterpreterError("modulo by zero")
        return lhs % rhs
    if op == "shl":
        if rhs < 0 or rhs > 512:
            raise InterpreterError(f"bad shift amount {rhs}")
        return lhs << rhs
    if op == "shr":
        if rhs < 0 or rhs > 512:
            raise InterpreterError(f"bad shift amount {rhs}")
        return lhs >> rhs
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "min":
        return min(lhs, rhs)
    if op == "max":
        return max(lhs, rhs)
    raise InterpreterError(f"unknown binary op {op!r}")


def _apply_cmp(op: str, lhs: int, rhs: int) -> bool:
    if op == "eq":
        return lhs == rhs
    if op == "ne":
        return lhs != rhs
    if op == "lt":
        return lhs < rhs
    if op == "le":
        return lhs <= rhs
    if op == "gt":
        return lhs > rhs
    if op == "ge":
        return lhs >= rhs
    raise InterpreterError(f"unknown comparison {op!r}")


def run_module(
    module: Module,
    args: Optional[List[int]] = None,
    input_values: Optional[Iterable[int]] = None,
    max_steps: int = 5_000_000,
    check_assertions: bool = True,
) -> ExecutionResult:
    """Convenience wrapper: interpret ``main(args)`` and return the profile."""
    interpreter = Interpreter(
        module, max_steps=max_steps, check_assertions=check_assertions
    )
    return interpreter.run(args=args, input_values=input_values)
