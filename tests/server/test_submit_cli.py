"""``repro submit``: the client CLI against a live in-process daemon."""

import json
import threading

import pytest

from repro.cli import main
from repro.observability.metrics import validate_report_dict
from repro.server import ReproServer

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 50; i = i + 1) {
    if (i > 40) { total = total + i; }
  }
  return total;
}
"""

OTHER = "func main(n) { if (n > 0) { return 1; } return 0; }"

BROKEN = "func main( { oops"


@pytest.fixture
def served():
    server = ReproServer(port=0, workers=2, queue_size=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.drain(timeout=10)


def submit(served, *argv):
    return main(["submit", "--port", str(served.port), *argv])


class TestSingleFile:
    def test_byte_parity_with_one_shot_predict(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        assert main(["predict", str(path)]) == 0
        expected = capsys.readouterr().out
        assert submit(served, str(path)) == 0
        assert capsys.readouterr().out == expected

    def test_byte_parity_for_check(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        code = main(["check", str(path)])
        expected = capsys.readouterr().out
        assert submit(served, "--command", "check", str(path)) == code
        assert capsys.readouterr().out == expected

    def test_run_with_args(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(OTHER, encoding="utf-8")
        assert main(["run", str(path), "--args", "7"]) == 0
        expected = capsys.readouterr().out
        code = submit(
            served, "--command", "run", "--args", "7", str(path)
        )
        assert code == 0
        assert capsys.readouterr().out == expected

    def test_stdin_submission(self, capsys, monkeypatch, served):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(PROGRAM))
        assert submit(served, "-") == 0
        out = capsys.readouterr().out
        assert out.startswith("function")

    def test_verbose_reports_cache_state(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        submit(served, str(path))
        capsys.readouterr()
        submit(served, "--verbose", str(path))
        err = capsys.readouterr().err
        assert "cached=memory" in err
        assert "key=" in err


class TestMultiFile:
    def test_headers_and_order(self, capsys, tmp_path, served):
        paths = []
        for index, source in enumerate((PROGRAM, OTHER)):
            path = tmp_path / f"p{index}.toy"
            path.write_text(source, encoding="utf-8")
            paths.append(str(path))
        assert submit(served, *paths) == 0
        out = capsys.readouterr().out
        assert out.index(f"== {paths[0]} ==") < out.index(f"== {paths[1]} ==")

    def test_broken_file_fails_alone(self, capsys, tmp_path, served):
        good = tmp_path / "good.toy"
        good.write_text(PROGRAM, encoding="utf-8")
        bad = tmp_path / "bad.toy"
        bad.write_text(BROKEN, encoding="utf-8")
        code = submit(served, str(good), str(bad))
        assert code == 1
        captured = capsys.readouterr()
        assert "function" in captured.out  # the good file still rendered
        assert "error:" in captured.err

    def test_stdin_must_be_alone(self, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        with pytest.raises(SystemExit):
            submit(served, "-", str(path))


class TestFailureModes:
    def test_unreachable_daemon_exits_with_error(self, tmp_path):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            # Port 1 is never listening.
            main(["submit", "--port", "1", "--http-timeout", "1", str(path)])
        assert "error:" in str(excinfo.value)

    def test_missing_file(self, served):
        with pytest.raises(SystemExit):
            submit(served, "no-such-file.toy")


class TestEmitMetrics:
    def test_writes_a_valid_v5_document(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        out_path = tmp_path / "metrics.json"
        assert submit(served, "--emit-metrics", str(out_path), str(path)) == 0
        assert f"metrics written to {out_path}" in capsys.readouterr().out
        document = json.loads(out_path.read_text(encoding="utf-8"))
        assert validate_report_dict(document) is None
        assert document["schema_version"] == 8
        assert document["server"]["endpoints"]["/v1/predict"]["count"] >= 1


class TestVerboseProvenance:
    def test_degraded_response_prints_the_reason(self, capsys, tmp_path):
        server = ReproServer(port=0, workers=2, queue_size=8, timeout_s=0.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            path = tmp_path / "p.toy"
            path.write_text(PROGRAM, encoding="utf-8")
            assert submit(server, "--verbose", str(path)) == 0
            err = capsys.readouterr().err
            assert "degraded=True" in err
            assert "reason=" in err
            assert "deadline" in err
        finally:
            server.drain(timeout=10)

    def test_error_response_prints_the_error(self, capsys, tmp_path, served):
        path = tmp_path / "bad.toy"
        path.write_text(BROKEN, encoding="utf-8")
        assert submit(served, "--verbose", str(path)) == 1
        err = capsys.readouterr().err
        assert "status=error" in err
        assert "error=" in err

    def test_verbose_line_carries_the_trace_id(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        trace = tmp_path / "trace.json"
        code = submit(
            served, "--verbose", "--trace-out", str(trace), str(path)
        )
        assert code == 0
        err = capsys.readouterr().err
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert f"trace_id={document['otherData']['trace_id']}" in err


class TestTraceOut:
    def test_writes_a_valid_chrome_trace(self, capsys, tmp_path, served):
        from repro.observability.chrometrace import validate_chrome_trace

        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        trace = tmp_path / "trace.json"
        assert submit(served, "--trace-out", str(trace), str(path)) == 0
        assert f"trace written to {trace}" in capsys.readouterr().out
        document = json.loads(trace.read_text(encoding="utf-8"))
        assert validate_chrome_trace(document) == []
        names = [event["name"] for event in document["traceEvents"]]
        # The client-side submit span plus the server's wire spans.
        assert any(name.startswith("submit:") for name in names)
        assert "request" in names

    def test_trace_out_does_not_change_stdout(self, capsys, tmp_path, served):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        assert main(["predict", str(path)]) == 0
        expected = capsys.readouterr().out
        trace = tmp_path / "trace.json"
        assert submit(served, "--trace-out", str(trace), str(path)) == 0
        out = capsys.readouterr().out
        # Only the trailing "trace written to" line is added.
        assert out.splitlines()[-1].startswith("trace written to")
        assert out.splitlines()[:-1] == expected.splitlines()
