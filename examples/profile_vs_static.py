"""Static prediction versus execution profiling on a real workload.

Reproduces the paper's methodology on one benchmark: collect a profile
on the *train* input, score every predictor against the behaviour on
the *ref* input, and print a per-branch comparison plus the error CDF.

Run:  python examples/profile_vs_static.py [workload-name]
"""

import sys

from repro.evalharness import (
    branch_errors,
    error_cdf,
    format_cdf_table,
    mean_error,
    prepare_workload,
    standard_predictors,
)
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tokenize"
    workload = get_workload(name)
    print(f"workload: {workload.name} ({workload.suite} suite)")
    print(f"  {workload.description}")
    prepared = prepare_workload(workload)

    predictions = {
        predictor_name: predict(prepared)
        for predictor_name, predict in standard_predictors().items()
    }
    records = {
        predictor_name: branch_errors(p, prepared.truth_profile)
        for predictor_name, p in predictions.items()
    }

    print()
    print("=== Per-branch detail (vrp vs profile vs actual) ===")
    truth = prepared.truth_profile
    for (function, label), counts in sorted(truth.branch_counts.items()):
        total = counts[0] + counts[1]
        if not total:
            continue
        actual = counts[0] / total
        vrp = predictions["vrp"].get((function, label), 0.5)
        profile = predictions["profile"].get((function, label), 0.5)
        print(
            f"  {function:10s} {label:10s} actual={actual:6.1%}  "
            f"vrp={vrp:6.1%}  profile={profile:6.1%}  (executed {total}x)"
        )

    print()
    print("=== Mean absolute error (percentage points) ===")
    for predictor_name, recs in sorted(
        records.items(), key=lambda item: mean_error(item[1])
    ):
        print(
            f"  {predictor_name:12s} unweighted {mean_error(recs):5.1f}  "
            f"weighted {mean_error(recs, weighted=True):5.1f}"
        )

    print()
    series = {predictor_name: error_cdf(recs) for predictor_name, recs in records.items()}
    print(format_cdf_table(series, title="=== Error CDF (percent of branches within margin) ==="))


if __name__ == "__main__":
    main()
