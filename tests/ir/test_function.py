"""Function / BasicBlock / Module container tests."""

import pytest

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import Copy, Jump, Phi, Pi, Return
from repro.ir.values import Constant, Temp


class TestBasicBlock:
    def test_append_sets_backpointer(self):
        block = BasicBlock("b")
        instr = block.append(Copy(Temp("x"), Constant(1)))
        assert instr.block is block

    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Return(Constant(0)))
        with pytest.raises(ValueError, match="terminated"):
            block.append(Copy(Temp("x"), Constant(1)))

    def test_terminator_property(self):
        block = BasicBlock("b")
        with pytest.raises(ValueError):
            _ = block.terminator
        block.append(Jump("next"))
        assert isinstance(block.terminator, Jump)

    def test_phis_stop_at_first_non_phi(self):
        block = BasicBlock("b")
        block.append(Phi(Temp("a"), [("p", Constant(1))]))
        block.append(Copy(Temp("b"), Constant(2)))
        block.append(Return(Temp("b")))
        assert len(block.phis()) == 1
        assert len(block.body()) == 2

    def test_prepend_phi_goes_after_existing_phis(self):
        block = BasicBlock("b")
        first = Phi(Temp("a"), [("p", Constant(1))])
        block.append(first)
        block.append(Return(Constant(0)))
        second = Phi(Temp("b"), [("p", Constant(2))])
        block.prepend_phi(second)
        assert block.instructions[0] is first
        assert block.instructions[1] is second

    def test_pis_collected(self):
        block = BasicBlock("b")
        block.append(Pi(Temp("x2"), Temp("x1"), "lt", Constant(5)))
        block.append(Return(Temp("x2")))
        assert len(block.pis()) == 1

    def test_remove(self):
        block = BasicBlock("b")
        instr = block.append(Copy(Temp("x"), Constant(1)))
        block.append(Return(Temp("x")))
        block.remove(instr)
        assert instr.block is None
        assert len(block.instructions) == 1


class TestFunction:
    def test_first_block_becomes_entry(self):
        function = Function("f")
        function.add_block(BasicBlock("start"))
        function.add_block(BasicBlock("other"))
        assert function.entry_label == "start"
        assert function.entry.label == "start"

    def test_duplicate_label_rejected(self):
        function = Function("f")
        function.add_block(BasicBlock("b"))
        with pytest.raises(ValueError, match="duplicate"):
            function.add_block(BasicBlock("b"))

    def test_new_block_labels_unique(self):
        function = Function("f")
        labels = {function.new_block().label for _ in range(10)}
        assert len(labels) == 10

    def test_new_temp_names_unique(self):
        function = Function("f")
        names = {function.new_temp().name for _ in range(10)}
        assert len(names) == 10

    def test_cannot_remove_entry(self):
        function = Function("f")
        function.add_block(BasicBlock("entry"))
        with pytest.raises(ValueError):
            function.remove_block("entry")

    def test_entry_of_empty_function_rejected(self):
        with pytest.raises(ValueError):
            _ = Function("f").entry

    def test_instruction_count(self):
        function = Function("f")
        block = function.add_block(BasicBlock("b"))
        block.append(Copy(Temp("x"), Constant(1)))
        block.append(Return(Temp("x")))
        assert function.instruction_count() == 2

    def test_instructions_iterates_all_blocks(self):
        function = Function("f")
        a = function.add_block(BasicBlock("a"))
        b = function.add_block(BasicBlock("b"))
        a.append(Jump("b"))
        b.append(Return(Constant(0)))
        assert len(list(function.instructions())) == 2


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module()
        module.add_function(Function("f"))
        with pytest.raises(ValueError, match="duplicate"):
            module.add_function(Function("f"))

    def test_main_property(self):
        module = Module()
        main = Function("main")
        module.add_function(main)
        assert module.main is main

    def test_instruction_count_sums_functions(self):
        module = Module()
        for name in ("a", "b"):
            function = Function(name)
            block = function.add_block(BasicBlock("entry"))
            block.append(Return(Constant(0)))
            module.add_function(function)
        assert module.instruction_count() == 2
