"""Array bounds-check elimination from value ranges (paper §6).

"Many array bounds checks can be shown to be redundant by value range
propagation": an access ``a[i]`` with ``i``'s range provably inside
``[0, len(a))`` needs no dynamic check.  This module classifies every
array access of a function and can count the dynamic checks an
instrumented interpreter run would actually skip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bounds import Bound
from repro.core.propagation import FunctionPrediction
from repro.core.rangeset import RangeSet
from repro.ir.function import Function
from repro.ir.instructions import Load, Store
from repro.ir.values import Constant, Temp

# Classification outcomes.
SAFE = "safe"  # check provably redundant
UNSAFE = "unsafe"  # provably out of bounds on some executions
UNKNOWN = "unknown"  # range too weak to decide


@dataclass
class AccessReport:
    """One array access and what the ranges prove about it."""

    block_label: str
    array: str
    size: Optional[int]
    index_range: RangeSet
    classification: str
    kind: str  # "load" or "store"

    def __repr__(self) -> str:
        return (
            f"AccessReport({self.kind} {self.array}[{self.index_range}] "
            f"in {self.block_label}: {self.classification})"
        )


def classify_index(index_range: RangeSet, size: Optional[int]) -> str:
    """Decide whether an index range needs a bounds check."""
    if size is None or not index_range.is_set:
        return UNKNOWN
    hull = index_range.hull()
    if hull is None:
        return UNKNOWN
    below = hull.lo.compare(Bound.number(0))
    above = hull.hi.compare(Bound.number(size - 1))
    if below is not None and below >= 0 and above is not None and above <= 0:
        return SAFE
    # Entirely outside on either side is a guaranteed violation.
    if hull.hi.compare(Bound.number(0)) is not None and hull.hi.compare(
        Bound.number(0)
    ) < 0:
        return UNSAFE
    low_ok = hull.lo.compare(Bound.number(size - 1))
    if low_ok is not None and low_ok > 0:
        return UNSAFE
    return UNKNOWN


@dataclass
class AccessClassification:
    """Component-wise verdict on one index range against ``[0, size)``.

    Richer than :func:`classify_index`: instead of collapsing the set to
    its hull, each weighted component range is tested separately, giving
    the probability mass that is provably out of bounds.  Ranges with an
    infinite hull side (the engine's widening artefacts) contribute *no*
    out-of-bounds mass on partial overlap -- a widened ``[0:+inf]`` is
    an over-approximation, not a proof that large indices occur.
    """

    classification: str  # SAFE / UNSAFE / UNKNOWN
    definitely_oob: bool  # every component lies entirely outside
    oob_mass: float  # probability mass provably out of bounds


def _progression_inside(r, size: int) -> Optional[int]:
    """Values of the finite numeric progression ``r`` inside [0, size)."""
    lo = r.lo.offset
    hi = r.hi.offset
    if r.is_single():
        return 1 if 0 <= lo <= size - 1 else 0
    stride = r.stride if r.stride > 0 else 1
    clamp_lo = max(int(lo), 0)
    clamp_hi = min(int(hi), size - 1)
    if clamp_hi < clamp_lo:
        return 0
    first = int(lo) + -(-(clamp_lo - int(lo)) // stride) * stride
    if first > clamp_hi:
        return 0
    return (clamp_hi - first) // stride + 1


def classify_access(index_range: RangeSet, size: Optional[int]) -> AccessClassification:
    """Classify one access component-wise; see :class:`AccessClassification`."""
    if size is None or not index_range.is_set or not index_range.ranges:
        return AccessClassification(UNKNOWN, False, 0.0)
    zero = Bound.number(0)
    top = Bound.number(size - 1)
    oob_mass = 0.0
    any_entire_oob = False
    all_entire_oob = True
    all_inside = True
    undecided = False
    for r in index_range.ranges:
        below = r.hi.compare(zero)  # entire range below 0?
        above = r.lo.compare(top)  # entire range above size-1?
        if (below is not None and below < 0) or (above is not None and above > 0):
            oob_mass += r.probability
            if r.probability > 0.0:
                any_entire_oob = True
            all_inside = False
            continue
        all_entire_oob = False
        lo_in = r.lo.compare(zero)
        hi_in = r.hi.compare(top)
        if lo_in is not None and lo_in >= 0 and hi_in is not None and hi_in <= 0:
            continue  # entirely inside
        all_inside = False
        # Partial overlap.  Only a finite numeric range yields provable
        # out-of-bounds mass; symbolic or widened (infinite) ranges are
        # over-approximations and stay silent.
        if r.is_numeric() and r.is_finite():
            total = r.count()
            inside = _progression_inside(r, size)
            if total and inside is not None and total > 0:
                oob_mass += r.probability * (total - inside) / total
        else:
            undecided = True
    if any_entire_oob:
        classification = UNSAFE
    elif all_inside:
        classification = SAFE
    else:
        classification = UNKNOWN
    definitely_oob = all_entire_oob and any_entire_oob and not undecided
    return AccessClassification(classification, definitely_oob, min(1.0, oob_mass))


def analyse_bounds_checks(
    function: Function, prediction: FunctionPrediction
) -> List[AccessReport]:
    """Classify every array access of the function."""
    reports: List[AccessReport] = []
    for label, block in function.blocks.items():
        for instr in block.instructions:
            if isinstance(instr, Load):
                kind, array, index = "load", instr.array, instr.index
            elif isinstance(instr, Store):
                kind, array, index = "store", instr.array, instr.index
            else:
                continue
            size = function.arrays.get(array)
            index_range = _operand_range(prediction, index)
            reports.append(
                AccessReport(
                    block_label=label,
                    array=array,
                    size=size,
                    index_range=index_range,
                    classification=classify_index(index_range, size),
                    kind=kind,
                )
            )
    return reports


def _operand_range(prediction: FunctionPrediction, operand) -> RangeSet:
    if isinstance(operand, Constant):
        return RangeSet.constant(operand.value)
    if isinstance(operand, Temp):
        return prediction.values.get(operand.name, RangeSet.bottom())
    return RangeSet.bottom()


def eliminated_fraction(reports: List[AccessReport]) -> float:
    """Static fraction of accesses whose checks are proven redundant."""
    if not reports:
        return 0.0
    safe = sum(1 for report in reports if report.classification == SAFE)
    return safe / len(reports)


def dynamic_checks_eliminated(
    reports: List[AccessReport],
    prediction: FunctionPrediction,
) -> float:
    """Expected fraction of *dynamic* checks removed, frequency-weighted."""
    total = 0.0
    saved = 0.0
    for report in reports:
        weight = prediction.block_frequency.get(report.block_label, 0.0)
        total += weight
        if report.classification == SAFE:
            saved += weight
    return saved / total if total > 0 else 0.0
