"""Range arithmetic tests, including the paper's §3.5 worked example."""

import pytest

from repro.core.bounds import Bound, POS_INF
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP
from repro.core.range_arith import evaluate_binop, evaluate_unop


def extents(rangeset):
    return {
        (str(r.lo), str(r.hi), r.stride): pytest.approx(r.probability)
        for r in rangeset.ranges
    }


class TestPaperExample:
    def test_section_3_5_addition(self):
        a = RangeSet.from_ranges(
            [StridedRange.span(0.7, 32, 256, 1), StridedRange.span(0.3, 3, 21, 3)]
        )
        b = RangeSet.from_ranges(
            [StridedRange.span(0.6, 16, 100, 4), StridedRange.single(0.4, 8)]
        )
        result = evaluate_binop("add", a, b, max_ranges=8)
        got = extents(result)
        assert got[("48", "356", 1)] == pytest.approx(0.42)
        assert got[("40", "264", 1)] == pytest.approx(0.28)
        assert got[("19", "121", 1)] == pytest.approx(0.18)
        assert got[("11", "29", 3)] == pytest.approx(0.12)


class TestLatticePropagation:
    def test_top_propagates(self):
        assert evaluate_binop("add", TOP, RangeSet.constant(1)) is TOP

    def test_bottom_both_sides(self):
        assert evaluate_binop("add", BOTTOM, BOTTOM) is BOTTOM

    def test_bottom_plus_range_is_bottom(self):
        assert evaluate_binop("add", BOTTOM, RangeSet.constant(1)) is BOTTOM

    def test_bottom_mod_constant_recovers_range(self):
        # x % 70 is in [0:69] whatever x holds -- the paper-compliant
        # static fact for unknown inputs.
        result = evaluate_binop("mod", BOTTOM, RangeSet.constant(70))
        hull = result.hull()
        assert hull.lo.offset == 0 and hull.hi.offset == 69

    def test_bottom_and_mask_recovers_range(self):
        result = evaluate_binop("and", BOTTOM, RangeSet.constant(255))
        hull = result.hull()
        assert hull.lo.offset == 0 and hull.hi.offset == 255

    def test_unop_on_top_and_bottom(self):
        assert evaluate_unop("neg", TOP) is TOP
        assert evaluate_unop("neg", BOTTOM) is BOTTOM


class TestAddSub:
    def test_constant_folding(self):
        assert evaluate_binop("add", RangeSet.constant(2), RangeSet.constant(3)).constant_value() == 5

    def test_single_preserves_stride(self):
        result = evaluate_binop(
            "add", RangeSet.span(0, 20, 5), RangeSet.constant(1)
        )
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset, r.stride) == (1, 21, 5)

    def test_sub_ranges(self):
        result = evaluate_binop("sub", RangeSet.span(10, 20), RangeSet.span(0, 5))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (5, 20)

    def test_symbolic_plus_constant(self):
        sym = RangeSet.symbol("n.0")
        result = evaluate_binop("add", sym, RangeSet.constant(2))
        assert result.ranges[0].lo == Bound.symbolic("n.0", 2)

    def test_same_symbol_difference_is_numeric(self):
        a = RangeSet.symbol("n.0", 5)
        b = RangeSet.symbol("n.0", 2)
        assert evaluate_binop("sub", a, b).constant_value() == 3

    def test_two_distinct_symbols_sum_is_bottom(self):
        assert evaluate_binop("add", RangeSet.symbol("x"), RangeSet.symbol("y")) is BOTTOM


class TestMulDiv:
    def test_constant_scale(self):
        result = evaluate_binop("mul", RangeSet.span(0, 10, 2), RangeSet.constant(3))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset, r.stride) == (0, 30, 6)

    def test_negative_scale_swaps(self):
        result = evaluate_binop("mul", RangeSet.span(1, 5), RangeSet.constant(-2))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (-10, -2)

    def test_scale_by_zero(self):
        assert evaluate_binop("mul", RangeSet.span(0, 100), RangeSet.constant(0)).constant_value() == 0

    def test_range_times_range_endpoints(self):
        result = evaluate_binop("mul", RangeSet.span(-2, 3), RangeSet.span(-5, 4))
        r = result.ranges[0]
        assert r.lo.offset == -15  # 3 * -5
        assert r.hi.offset == 12  # 3 * 4

    def test_floor_division_by_constant(self):
        result = evaluate_binop("div", RangeSet.span(0, 9), RangeSet.constant(2))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (0, 4)

    def test_floor_division_negative_dividend(self):
        result = evaluate_binop("div", RangeSet.span(-3, 3), RangeSet.constant(2))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (-2, 1)

    def test_division_by_range_containing_zero_is_bottom(self):
        assert evaluate_binop("div", RangeSet.constant(10), RangeSet.span(-1, 1)) is BOTTOM

    def test_division_by_zero_is_bottom(self):
        assert evaluate_binop("div", RangeSet.constant(10), RangeSet.constant(0)) is BOTTOM

    def test_stride_division(self):
        result = evaluate_binop("div", RangeSet.span(0, 40, 10), RangeSet.constant(5))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset, r.stride) == (0, 8, 2)

    def test_symbolic_division_by_one(self):
        sym = RangeSet.symbol("x")
        assert evaluate_binop("div", sym, RangeSet.constant(1)).copy_symbol() == "x"


class TestModShift:
    def test_mod_reduces_to_window(self):
        result = evaluate_binop("mod", RangeSet.span(0, 1000), RangeSet.constant(7))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (0, 6)

    def test_mod_of_already_reduced_is_identity(self):
        result = evaluate_binop("mod", RangeSet.span(0, 5), RangeSet.constant(10))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (0, 5)

    def test_mod_stride_gcd(self):
        # {0,4,8,...} mod 6 cycles through {0,4,2}: stride gcd(4,6)=2.
        result = evaluate_binop("mod", RangeSet.span(0, 20, 4), RangeSet.constant(6))
        assert result.ranges[0].stride == 2

    def test_mod_by_zero_is_bottom(self):
        assert evaluate_binop("mod", RangeSet.span(0, 5), RangeSet.constant(0)) is BOTTOM

    def test_shl_scales(self):
        result = evaluate_binop("shl", RangeSet.span(1, 4), RangeSet.constant(3))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (8, 32)

    def test_shr_divides(self):
        result = evaluate_binop("shr", RangeSet.span(8, 32), RangeSet.constant(2))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (2, 8)

    def test_shift_by_range_is_bottom(self):
        assert evaluate_binop("shl", RangeSet.constant(1), RangeSet.span(0, 3)) is BOTTOM


class TestBitwise:
    def test_constant_fold_all(self):
        assert evaluate_binop("and", RangeSet.constant(12), RangeSet.constant(10)).constant_value() == 8
        assert evaluate_binop("or", RangeSet.constant(12), RangeSet.constant(10)).constant_value() == 14
        assert evaluate_binop("xor", RangeSet.constant(12), RangeSet.constant(10)).constant_value() == 6

    def test_and_mask_bounds(self):
        result = evaluate_binop("and", RangeSet.span(0, 1000), RangeSet.constant(15))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (0, 15)

    def test_and_mask_tightens_with_small_operand(self):
        result = evaluate_binop("and", RangeSet.span(0, 5), RangeSet.constant(255))
        assert result.ranges[0].hi.offset == 5

    def test_or_power_of_two_bound(self):
        result = evaluate_binop("or", RangeSet.span(0, 5), RangeSet.span(0, 9))
        assert result.ranges[0].hi.offset == 15  # < 2^4

    def test_xor_negative_is_bottom(self):
        assert evaluate_binop("xor", RangeSet.span(-5, 5), RangeSet.constant(3)) is BOTTOM


class TestMinMaxNeg:
    def test_min(self):
        result = evaluate_binop("min", RangeSet.span(0, 10), RangeSet.span(5, 20))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (0, 10)

    def test_max(self):
        result = evaluate_binop("max", RangeSet.span(0, 10), RangeSet.span(5, 20))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (5, 20)

    def test_neg_swaps_bounds(self):
        result = evaluate_unop("neg", RangeSet.span(2, 7, 1))
        r = result.ranges[0]
        assert (r.lo.offset, r.hi.offset) == (-7, -2)

    def test_neg_symbolic_is_bottom(self):
        assert evaluate_unop("neg", RangeSet.symbol("x")) is BOTTOM

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            evaluate_binop("pow", RangeSet.constant(2), RangeSet.constant(3))


class TestProbabilityWeights:
    def test_cross_product_weights_multiply(self):
        a = RangeSet.from_ranges(
            [StridedRange.single(0.5, 0), StridedRange.single(0.5, 100)]
        )
        b = RangeSet.from_ranges(
            [StridedRange.single(0.25, 0), StridedRange.single(0.75, 1000)]
        )
        result = evaluate_binop("add", a, b, max_ranges=8)
        probabilities = sorted(r.probability for r in result.ranges)
        assert probabilities == [
            pytest.approx(0.125),
            pytest.approx(0.125),
            pytest.approx(0.375),
            pytest.approx(0.375),
        ]
        assert sum(probabilities) == pytest.approx(1.0)
