"""Recursive-descent parser for the toy language.

Grammar (precedence low to high)::

    program   := funcdef*
    funcdef   := "func" IDENT "(" [IDENT ("," IDENT)*] ")" block
    block     := "{" stmt* "}"
    stmt      := "var" IDENT ["=" expr] ";"
               | "array" IDENT "[" INT "]" ";"
               | IDENT "=" expr ";"
               | IDENT "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ["else" (block | if-stmt)]
               | "while" "(" expr ")" block
               | "do" block "while" "(" expr ")" ";"
               | "for" "(" [simple] ";" [expr] ";" [simple] ")" block
               | "break" ";" | "continue" ";"
               | "return" [expr] ";"
               | expr ";"
    expr      := or
    or        := and ("||" and)*
    and       := bitor ("&&" bitor)*
    bitor     := bitxor ("|" bitxor)*
    bitxor    := bitand ("^" bitand)*
    bitand    := equality ("&" equality)*
    equality  := relational (("=="|"!=") relational)*
    relational:= shift (("<"|"<="|">"|">=") shift)*
    shift     := additive (("<<"|">>") additive)*
    additive  := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary     := ("-"|"!") unary | primary
    primary   := INT | "input" "(" ")" | IDENT ["(" args ")" | "[" expr "]"]
               | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind


class ParseError(Exception):
    """Raised on a syntax error, with the offending token's position."""

    def __init__(self, message: str, token: Token):
        self.token = token
        super().__init__(
            f"parse error at {token.line}:{token.column}: {message} "
            f"(got {token.kind} {token.text!r})"
        )


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != TokenKind.EOF:
            self.position += 1
        return token

    def _expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if not token.is_punct(punct):
            raise ParseError(f"expected {punct!r}", token)
        return self._advance()

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if not token.is_op(op):
            raise ParseError(f"expected {op!r}", token)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected keyword {word!r}", token)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != TokenKind.IDENT:
            raise ParseError("expected identifier", token)
        return self._advance()

    def _match_punct(self, punct: str) -> bool:
        if self._peek().is_punct(punct):
            self._advance()
            return True
        return False

    def _match_op(self, op: str) -> bool:
        if self._peek().is_op(op):
            self._advance()
            return True
        return False

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions: List[ast.FuncDef] = []
        constants: List[ast.ConstDef] = []
        while not self._peek().kind == TokenKind.EOF:
            if self._peek().is_keyword("const"):
                constants.append(self._parse_constdef())
            else:
                functions.append(self.parse_funcdef())
        if not functions:
            raise ParseError("program has no functions", self._peek())
        return ast.Program(functions, constants)

    def _parse_constdef(self) -> ast.ConstDef:
        start = self._expect_keyword("const")
        name = self._expect_ident().text
        self._expect_op("=")
        value = self.parse_expr()
        self._expect_punct(";")
        return ast.ConstDef(name, value, line=start.line)

    def parse_funcdef(self) -> ast.FuncDef:
        start = self._expect_keyword("func")
        name = self._expect_ident().text
        self._expect_punct("(")
        params: List[str] = []
        if not self._peek().is_punct(")"):
            params.append(self._expect_ident().text)
            while self._match_punct(","):
                params.append(self._expect_ident().text)
        self._expect_punct(")")
        body = self.parse_block()
        return ast.FuncDef(name, params, body, line=start.line)

    def parse_block(self) -> ast.Block:
        start = self._expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == TokenKind.EOF:
                raise ParseError("unterminated block", self._peek())
            statements.append(self.parse_statement())
        self._expect_punct("}")
        return ast.Block(statements, line=start.line)

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_keyword("var"):
            return self._parse_var_decl()
        if token.is_keyword("array"):
            return self._parse_array_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            stmt = ast.Break()
            stmt.line = token.line
            return stmt
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            stmt = ast.Continue()
            stmt.line = token.line
            return stmt
        if token.is_keyword("return"):
            self._advance()
            value: Optional[ast.Expr] = None
            if not self._peek().is_punct(";"):
                value = self.parse_expr()
            self._expect_punct(";")
            return ast.Return(value, line=token.line)
        simple = self._parse_simple_statement()
        self._expect_punct(";")
        return simple

    def _parse_simple_statement(self) -> ast.Stmt:
        """Assignment, array store, or expression statement (no ';')."""
        token = self._peek()
        if token.kind == TokenKind.IDENT:
            if self._peek(1).is_op("="):
                name = self._advance().text
                self._advance()  # '='
                value = self.parse_expr()
                return ast.Assign(name, value, line=token.line)
            if self._peek(1).is_punct("["):
                # Could be a store `a[i] = e` or a read used as a statement.
                saved = self.position
                name = self._advance().text
                self._advance()  # '['
                index = self.parse_expr()
                self._expect_punct("]")
                if self._match_op("="):
                    value = self.parse_expr()
                    return ast.ArrayAssign(name, index, value, line=token.line)
                self.position = saved
        expr = self.parse_expr()
        return ast.ExprStmt(expr, line=token.line)

    def _parse_var_decl(self) -> ast.Stmt:
        start = self._expect_keyword("var")
        name = self._expect_ident().text
        value: ast.Expr = ast.IntLit(0, line=start.line)
        if self._match_op("="):
            value = self.parse_expr()
        self._expect_punct(";")
        return ast.Assign(name, value, line=start.line)

    def _parse_array_decl(self) -> ast.ArrayDecl:
        start = self._expect_keyword("array")
        name = self._expect_ident().text
        self._expect_punct("[")
        size_token = self._peek()
        if size_token.kind == TokenKind.INT:
            size = int(size_token.value)
        elif size_token.kind == TokenKind.IDENT:
            size = size_token.text  # a named constant, resolved at lowering
        else:
            raise ParseError(
                "array size must be an integer literal or a named constant",
                size_token,
            )
        self._advance()
        self._expect_punct("]")
        self._expect_punct(";")
        return ast.ArrayDecl(name, size, line=start.line)

    def _parse_if(self) -> ast.If:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        condition = self.parse_expr()
        self._expect_punct(")")
        then_block = self.parse_block()
        else_block: Optional[ast.Block] = None
        if self._peek().is_keyword("else"):
            self._advance()
            if self._peek().is_keyword("if"):
                nested = self._parse_if()
                else_block = ast.Block([nested], line=nested.line)
            else:
                else_block = self.parse_block()
        return ast.If(condition, then_block, else_block, line=start.line)

    def _parse_while(self) -> ast.While:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        condition = self.parse_expr()
        self._expect_punct(")")
        body = self.parse_block()
        return ast.While(condition, body, line=start.line)

    def _parse_do_while(self) -> ast.DoWhile:
        start = self._expect_keyword("do")
        body = self.parse_block()
        self._expect_keyword("while")
        self._expect_punct("(")
        condition = self.parse_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body, condition, line=start.line)

    def _parse_for(self) -> ast.For:
        start = self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            init = self._parse_simple_statement()
        self._expect_punct(";")
        condition: Optional[ast.Expr] = None
        if not self._peek().is_punct(";"):
            condition = self.parse_expr()
        self._expect_punct(";")
        update: Optional[ast.Stmt] = None
        if not self._peek().is_punct(")"):
            update = self._parse_simple_statement()
        self._expect_punct(")")
        body = self.parse_block()
        return ast.For(init, condition, update, body, line=start.line)

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._peek().is_op("||"):
            token = self._advance()
            rhs = self._parse_and()
            expr = ast.LogicalExpr("||", expr, rhs, line=token.line)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_bitor()
        while self._peek().is_op("&&"):
            token = self._advance()
            rhs = self._parse_bitor()
            expr = ast.LogicalExpr("&&", expr, rhs, line=token.line)
        return expr

    def _parse_bitor(self) -> ast.Expr:
        expr = self._parse_bitxor()
        while self._peek().is_op("|"):
            token = self._advance()
            rhs = self._parse_bitxor()
            expr = ast.BinaryExpr("|", expr, rhs, line=token.line)
        return expr

    def _parse_bitxor(self) -> ast.Expr:
        expr = self._parse_bitand()
        while self._peek().is_op("^"):
            token = self._advance()
            rhs = self._parse_bitand()
            expr = ast.BinaryExpr("^", expr, rhs, line=token.line)
        return expr

    def _parse_bitand(self) -> ast.Expr:
        expr = self._parse_equality()
        while self._peek().is_op("&"):
            token = self._advance()
            rhs = self._parse_equality()
            expr = ast.BinaryExpr("&", expr, rhs, line=token.line)
        return expr

    def _parse_equality(self) -> ast.Expr:
        expr = self._parse_relational()
        while self._peek().is_op("==") or self._peek().is_op("!="):
            token = self._advance()
            rhs = self._parse_relational()
            expr = ast.BinaryExpr(token.text, expr, rhs, line=token.line)
        return expr

    def _parse_relational(self) -> ast.Expr:
        expr = self._parse_shift()
        while any(self._peek().is_op(op) for op in ("<", "<=", ">", ">=")):
            token = self._advance()
            rhs = self._parse_shift()
            expr = ast.BinaryExpr(token.text, expr, rhs, line=token.line)
        return expr

    def _parse_shift(self) -> ast.Expr:
        expr = self._parse_additive()
        while self._peek().is_op("<<") or self._peek().is_op(">>"):
            token = self._advance()
            rhs = self._parse_additive()
            expr = ast.BinaryExpr(token.text, expr, rhs, line=token.line)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._peek().is_op("+") or self._peek().is_op("-"):
            token = self._advance()
            rhs = self._parse_multiplicative()
            expr = ast.BinaryExpr(token.text, expr, rhs, line=token.line)
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while any(self._peek().is_op(op) for op in ("*", "/", "%")):
            token = self._advance()
            rhs = self._parse_unary()
            expr = ast.BinaryExpr(token.text, expr, rhs, line=token.line)
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_op("-"):
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value, line=token.line)
            return ast.UnaryExpr("-", operand, line=token.line)
        if token.is_op("!"):
            self._advance()
            return ast.UnaryExpr("!", self._parse_unary(), line=token.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == TokenKind.INT:
            self._advance()
            return ast.IntLit(int(token.value), line=token.line)
        if token.is_keyword("input"):
            self._advance()
            self._expect_punct("(")
            self._expect_punct(")")
            expr = ast.InputExpr()
            expr.line = token.line
            return expr
        if token.kind == TokenKind.IDENT:
            self._advance()
            if self._peek().is_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append(self.parse_expr())
                    while self._match_punct(","):
                        args.append(self.parse_expr())
                self._expect_punct(")")
                return ast.CallExpr(token.text, args, line=token.line)
            if self._peek().is_punct("["):
                self._advance()
                index = self.parse_expr()
                self._expect_punct("]")
                return ast.IndexExpr(token.text, index, line=token.line)
            return ast.Var(token.text, line=token.line)
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError("expected expression", token)


def parse(source: str) -> ast.Program:
    """Parse toy-language source text into an AST."""
    return Parser(tokenize(source)).parse_program()
