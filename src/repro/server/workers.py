"""Bounded worker pool with request queueing and backpressure.

The daemon's HTTP layer spawns a thread per connection (that is what
``ThreadingHTTPServer`` does), but *analysis* concurrency must be
bounded -- VRP is CPU work, and an unbounded backlog converts overload
into latency collapse.  So connection threads do not analyse; they
submit jobs here and wait.  The pool runs ``workers`` analysis threads
over a queue of at most ``queue_size`` waiting jobs, and a submit
against a full queue raises :class:`QueueFullError` immediately -- the
HTTP layer turns that into a 503 with ``Retry-After``, which is the
whole backpressure contract (``docs/SERVING.md``).

Micro-batching rides on the same pool: a multi-file submission expands
into one job per item (:meth:`WorkerPool.submit_many`), so items from
one batch interleave with other requests instead of monopolising the
pool, and the batch either enqueues atomically or fails with 503 as a
unit.  This is the serving-shape reuse of the PR 3 ``jobs=N`` fan-out:
the per-item functions are the same shape (pure, order-preserving),
only the executor differs -- resident threads instead of a process pool
booted per invocation.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, Tuple


class QueueFullError(RuntimeError):
    """The waiting-job queue is at capacity (maps to HTTP 503)."""


class PoolClosedError(RuntimeError):
    """The pool is draining or shut down and takes no new work."""


_Job = Tuple[Future, Callable, tuple, dict]


class WorkerPool:
    """Fixed worker threads over a bounded job queue."""

    def __init__(self, workers: int = 4, queue_size: int = 64):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.workers = workers
        self.queue_size = queue_size
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # Jobs accepted but not yet finished (queued + running).
        self._unfinished = 0
        self._accepting = True
        self._queue_high_water = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Enqueue one job; raises :class:`QueueFullError` at capacity."""
        return self.submit_many([(fn, args, kwargs)])[0]

    def submit_many(
        self, jobs: Sequence[Tuple[Callable, tuple, dict]]
    ) -> List[Future]:
        """Enqueue a batch atomically: all items fit or none enter.

        Queued-but-not-running counts against ``queue_size``; running
        jobs do not (they occupy a worker, not the queue).
        """
        with self._lock:
            if not self._accepting:
                raise PoolClosedError("worker pool is draining")
            queued = max(0, self._unfinished - self.workers)
            if queued + len(jobs) > self.queue_size:
                raise QueueFullError(
                    f"queue full ({queued} waiting, capacity {self.queue_size})"
                )
            futures: List[Future] = []
            for fn, args, kwargs in jobs:
                future: Future = Future()
                self._unfinished += 1
                self._queue.put((future, fn, args, kwargs))
                futures.append(future)
            self._queue_high_water = max(
                self._queue_high_water, max(0, self._unfinished - self.workers)
            )
            return futures

    # -- introspection -------------------------------------------------------

    def depth(self) -> int:
        """Jobs accepted and not yet finished (queued + running)."""
        with self._lock:
            return self._unfinished

    def high_water(self) -> int:
        """The deepest the waiting queue has ever been."""
        with self._lock:
            return self._queue_high_water

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work and wait for in-flight jobs to finish.

        Returns True when everything finished inside ``timeout``
        (``None`` = wait forever).  Idempotent; the pool stays usable
        for reads afterwards but rejects new submissions.
        """
        with self._idle:
            self._accepting = False
            return self._idle.wait_for(
                lambda: self._unfinished == 0, timeout=timeout
            )

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Drain, then stop the worker threads."""
        finished = self.drain(timeout=timeout)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=1.0)
        return finished

    # -- the worker loop -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            future, fn, args, kwargs = job
            try:
                if future.set_running_or_notify_cancel():
                    try:
                        future.set_result(fn(*args, **kwargs))
                    except BaseException as error:  # noqa: BLE001
                        future.set_exception(error)
            finally:
                with self._idle:
                    self._unfinished -= 1
                    if self._unfinished == 0:
                        self._idle.notify_all()
