"""Value operand tests."""

from repro.ir.values import Constant, Temp, UNDEF, Undef


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant(4)

    def test_bool_normalised_to_int(self):
        assert Constant(True).value == 1
        assert Constant(True) == Constant(1)

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_str(self):
        assert str(Constant(-7)) == "-7"

    def test_is_constant(self):
        assert Constant(0).is_constant()
        assert not Constant(0).is_temp()


class TestTemp:
    def test_equality_by_name(self):
        assert Temp("x") == Temp("x")
        assert Temp("x") != Temp("y")

    def test_not_equal_to_constant(self):
        assert Temp("x") != Constant(0)

    def test_hashable(self):
        assert len({Temp("a"), Temp("a"), Temp("b")}) == 2

    def test_str_prefix(self):
        assert str(Temp("x.1")) == "%x.1"


class TestUndef:
    def test_singleton_equality(self):
        assert Undef() == UNDEF

    def test_distinct_from_others(self):
        assert UNDEF != Constant(0)
        assert UNDEF != Temp("undef")
