"""Random-program fuzzing: end-to-end soundness of the whole pipeline.

Hypothesis generates small structured programs (guaranteed to terminate:
all loops are constant-bounded).  For each program:

* the pipeline must compile, canonicalise, and pass the SSA verifier;
* the interpreter must run it with assertion (Pi) checking on -- a
  violated assertion is a miscompilation;
* VRP must terminate with probabilities in [0, 1];
* every runtime value observed for an SSA name must lie inside the hull
  of the range VRP computed for it (probability weights are estimates,
  the *support* must be sound).
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis, verify_function
from repro.lang import compile_source
from repro.profiling.interpreter import Interpreter


@st.composite
def expressions(draw, variables, depth=0):
    """A terminating arithmetic expression over the given variables."""
    choices = ["literal"]
    if variables:
        choices.append("variable")
    if depth < 2:
        choices.extend(["binary", "binary", "mod", "div"])
    kind = draw(st.sampled_from(choices))
    if kind == "literal":
        return str(draw(st.integers(min_value=-20, max_value=20)))
    if kind == "variable":
        return draw(st.sampled_from(sorted(variables)))
    if kind == "mod":
        inner = draw(expressions(variables, depth + 1))
        modulus = draw(st.integers(min_value=1, max_value=17))
        return f"(({inner}) % {modulus})"
    if kind == "div":
        inner = draw(expressions(variables, depth + 1))
        divisor = draw(st.integers(min_value=1, max_value=9))
        return f"(({inner}) / {divisor})"
    op = draw(st.sampled_from(["+", "-", "*"]))
    lhs = draw(expressions(variables, depth + 1))
    rhs = draw(expressions(variables, depth + 1))
    return f"(({lhs}) {op} ({rhs}))"


@st.composite
def conditions(draw, variables):
    relop = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    lhs = draw(expressions(variables))
    rhs = draw(expressions(variables))
    return f"({lhs}) {relop} ({rhs})"


@st.composite
def statements(draw, readable, assignable, loop_depth=0, block_depth=0):
    """One statement; may introduce a new variable.

    ``readable`` includes loop indices; ``assignable`` does not, which
    guarantees every generated loop terminates.
    """
    choices = ["assign", "assign"]
    if block_depth < 2:
        choices.append("if")
        if loop_depth < 2:
            choices.append("for")
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        fresh = draw(st.booleans()) or not assignable
        if fresh:
            name = f"v{len(readable)}"
            readable.add(name)
            assignable.add(name)
            prefix = "var "
        else:
            name = draw(st.sampled_from(sorted(assignable)))
            prefix = ""
        value = draw(expressions(readable))
        return f"{prefix}{name} = {value};"
    if kind == "if":
        condition = draw(conditions(readable))
        then_body = draw(blocks(readable, assignable, loop_depth, block_depth + 1))
        if draw(st.booleans()):
            else_body = draw(blocks(readable, assignable, loop_depth, block_depth + 1))
            return f"if ({condition}) {{ {then_body} }} else {{ {else_body} }}"
        return f"if ({condition}) {{ {then_body} }}"
    # for loop with a constant bound and an untouchable index: terminates.
    index = f"i{loop_depth}{block_depth}{len(readable)}"
    bound = draw(st.integers(min_value=1, max_value=8))
    step = draw(st.integers(min_value=1, max_value=3))
    inner_readable = set(readable)
    inner_readable.add(index)
    body = draw(
        blocks(inner_readable, set(assignable), loop_depth + 1, block_depth + 1)
    )
    return (
        f"for ({index} = 0; {index} < {bound}; {index} = {index} + {step})"
        f" {{ {body} }}"
    )


@st.composite
def blocks(draw, readable, assignable, loop_depth=0, block_depth=0):
    count = draw(st.integers(min_value=1, max_value=3))
    scope_readable = set(readable)
    scope_assignable = set(assignable)
    parts = [
        draw(
            statements(scope_readable, scope_assignable, loop_depth, block_depth)
        )
        for _ in range(count)
    ]
    return " ".join(parts)


@st.composite
def programs(draw):
    readable = {"n"}
    assignable = {"n"}
    body = draw(blocks(readable, assignable))
    result = draw(expressions(readable))
    return f"func main(n) {{ {body} return {result}; }}"


def hull_bounds(rangeset):
    hull = rangeset.hull()
    if hull is None:
        return None
    lo = hull.lo.offset if hull.lo.is_numeric() else None
    hi = hull.hi.offset if hull.hi.is_numeric() else None
    return lo, hi


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs(), st.integers(min_value=-10, max_value=10))
def test_pipeline_soundness_on_random_programs(source, argument):
    module = compile_source(source)
    function = module.function("main")
    info = prepare_for_analysis(function)
    verify_function(function, ssa=True, param_names=set(info.param_names.values()))

    # Run with assertion checking: a violated Pi is a miscompilation.
    interpreter = Interpreter(
        module, max_steps=500_000, check_assertions=True, collect_values=True
    )
    try:
        run = interpreter.run(args=[argument])
    except Exception as error:  # noqa: BLE001 - division by zero is legal here
        from repro.profiling.interpreter import (
            AssertionViolation,
            InterpreterError,
            StepLimitExceeded,
        )

        assert isinstance(error, InterpreterError)
        assert not isinstance(error, AssertionViolation), f"unsound assertion: {error}"
        assert not isinstance(error, StepLimitExceeded), "generated program ran away"
        return  # arithmetic trap (division path); nothing more to check

    prediction = analyse_function(function, info)
    assert not prediction.aborted

    for probability in prediction.branch_probability.values():
        assert 0.0 <= probability <= 1.0

    # Support soundness: every observed value inside the computed hull.
    for (func_name, ssa_name), observed in run.observed_values.items():
        if func_name != "main":
            continue
        rangeset = prediction.values.get(ssa_name)
        if rangeset is None or not rangeset.is_set:
            continue  # ⊥ is always sound; ⊤ means never evaluated
        bounds = hull_bounds(rangeset)
        if bounds is None:
            continue  # symbolic hull: not checkable numerically
        lo, hi = bounds
        for value in observed:
            if lo is not None and not math.isinf(lo):
                assert value >= lo, (
                    f"{ssa_name}: observed {value} below hull {rangeset} in\n{source}"
                )
            if hi is not None and not math.isinf(hi):
                assert value <= hi, (
                    f"{ssa_name}: observed {value} above hull {rangeset} in\n{source}"
                )
