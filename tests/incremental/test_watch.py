"""The ``repro watch`` loop: polling, rechecks, events, CLI smoke."""

import io
import os

import pytest

from repro.cli import main
from repro.incremental.watch import run_watch
from repro.observability import Tracer, use
from repro.observability.events import WatchRecheck


class FakeOutcome:
    def __init__(self, reanalyzed=(), replayed=()):
        self.reanalyzed = tuple(reanalyzed)
        self.replayed = tuple(replayed)


class RenderSpy:
    """Records render calls; returns canned (text, outcome, error)."""

    def __init__(self, outcome=None, error=None):
        self.calls = []
        self.outcome = outcome if outcome is not None else FakeOutcome()
        self.error = error

    def __call__(self, path, source):
        self.calls.append((path, source))
        if self.error is not None:
            return "", None, self.error
        return f"render of {os.path.basename(path)}\n", self.outcome, None


def bump_mtime(path):
    stat = os.stat(path)
    os.utime(path, (stat.st_atime, stat.st_mtime + 2.0))


class TestPolling:
    def test_initial_render_of_every_file(self, tmp_path):
        a = tmp_path / "a.toy"
        b = tmp_path / "b.toy"
        a.write_text("func main() { return 1; }")
        b.write_text("func main() { return 2; }")
        spy = RenderSpy()
        out, err = io.StringIO(), io.StringIO()
        code = run_watch(
            [str(a), str(b)], spy,
            max_cycles=0, sleep=lambda s: None, out=out, err=err,
        )
        assert code == 0
        assert [path for path, _ in spy.calls] == [str(a), str(b)]
        assert out.getvalue() == (
            f"== {a} ==\nrender of a.toy\n== {b} ==\nrender of b.toy\n"
        )
        assert f"watch: {a} reanalyzed=0 replayed=0" in err.getvalue()

    def test_edit_triggers_a_recheck(self, tmp_path):
        path = tmp_path / "w.toy"
        path.write_text("one")

        def sleep(_interval):
            path.write_text("two")
            bump_mtime(path)

        spy = RenderSpy()
        run_watch(
            [str(path)], spy,
            max_cycles=1, sleep=sleep, out=io.StringIO(), err=io.StringIO(),
        )
        assert [source for _, source in spy.calls] == ["one", "two"]

    def test_unchanged_file_is_not_rerendered(self, tmp_path):
        path = tmp_path / "w.toy"
        path.write_text("one")
        spy = RenderSpy()
        run_watch(
            [str(path)], spy,
            max_cycles=3, sleep=lambda s: None,
            out=io.StringIO(), err=io.StringIO(),
        )
        assert len(spy.calls) == 1

    def test_touch_without_content_change_is_ignored(self, tmp_path):
        path = tmp_path / "w.toy"
        path.write_text("one")
        spy = RenderSpy()
        run_watch(
            [str(path)], spy,
            max_cycles=1, sleep=lambda s: bump_mtime(path),
            out=io.StringIO(), err=io.StringIO(),
        )
        assert len(spy.calls) == 1

    def test_missing_file_waits_then_comes_back(self, tmp_path):
        path = tmp_path / "late.toy"
        cycles = []

        def sleep(_interval):
            cycles.append(None)
            if len(cycles) == 2:
                path.write_text("now here")

        spy = RenderSpy()
        err = io.StringIO()
        run_watch(
            [str(path)], spy,
            max_cycles=3, sleep=sleep, out=io.StringIO(), err=err,
        )
        messages = err.getvalue()
        assert messages.count(f"watch: {path}: missing (waiting)") == 1
        assert f"watch: {path}: back" in messages
        assert [source for _, source in spy.calls] == ["now here"]

    def test_render_error_goes_to_stderr_only(self, tmp_path):
        path = tmp_path / "bad.toy"
        path.write_text("func main( {")
        spy = RenderSpy(error="parse error at 1:12")
        out, err = io.StringIO(), io.StringIO()
        run_watch(
            [str(path)], spy,
            max_cycles=0, sleep=lambda s: None, out=out, err=err,
        )
        assert out.getvalue() == ""
        assert f"watch: {path}: parse error at 1:12" in err.getvalue()

    def test_keyboard_interrupt_exits_cleanly(self, tmp_path):
        path = tmp_path / "w.toy"
        path.write_text("one")

        def sleep(_interval):
            raise KeyboardInterrupt

        err = io.StringIO()
        code = run_watch(
            [str(path)], RenderSpy(),
            max_cycles=None, sleep=sleep, out=io.StringIO(), err=err,
        )
        assert code == 0
        assert "watch: interrupted" in err.getvalue()


class TestRecheckEvents:
    def test_events_carry_reanalysis_counts(self, tmp_path):
        path = tmp_path / "w.toy"
        path.write_text("one")
        spy = RenderSpy(outcome=FakeOutcome(("f",), ("g", "h")))

        def sleep(_interval):
            path.write_text("two")
            bump_mtime(path)

        tracer = Tracer()
        with use(tracer):
            run_watch(
                [str(path)], spy,
                max_cycles=1, sleep=sleep,
                out=io.StringIO(), err=io.StringIO(),
            )
        events = tracer.events_of(WatchRecheck)
        assert len(events) == 2
        initial, recheck = events
        assert initial.initial is True
        assert recheck.initial is False
        for event in events:
            assert event.kind == "watch.recheck"
            assert event.path == str(path)
            assert event.reanalyzed == 1
            assert event.replayed == 2
            assert event.elapsed_ms >= 0.0


class TestCLI:
    def test_watch_predict_smoke(self, tmp_path, capsys):
        path = tmp_path / "main.toy"
        path.write_text(
            "func main(n) { if (n > 0) { return n; } return 0 - n; }"
        )
        code = main(
            ["watch", str(path), "--interval", "0.01", "--max-cycles", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"== {path} ==" in captured.out
        assert "P(taken)" in captured.out
        assert "reanalyzed=1 replayed=0" in captured.err

    def test_watch_check_recheck_replays(self, tmp_path, capsys):
        path = tmp_path / "main.toy"
        path.write_text(
            "func main(n) { if (n > 3) { return 1; } return 2; }"
        )

        def sleep(_interval):
            # Rewrite the same content plus a comment: semantics keep
            # their fingerprints, so the recheck replays everything.
            path.write_text(
                "// edited\n"
                "func main(n) { if (n > 3) { return 1; } return 2; }"
            )
            bump_mtime(path)

        import repro.incremental.watch as watch_mod

        original = watch_mod.run_watch

        def patched(paths, render, **kwargs):
            kwargs["sleep"] = sleep
            return original(paths, render, **kwargs)

        watch_mod.run_watch = patched
        try:
            code = main(
                ["watch", str(path), "--command", "check",
                 "--interval", "0.01", "--max-cycles", "1"]
            )
        finally:
            watch_mod.run_watch = original
        captured = capsys.readouterr()
        assert code == 0
        assert "reanalyzed=1 replayed=0" in captured.err
        assert "reanalyzed=0 replayed=1" in captured.err

    def test_watch_rejects_stdin(self):
        with pytest.raises(SystemExit, match="stdin"):
            main(["watch", "-", "--max-cycles", "0"])
