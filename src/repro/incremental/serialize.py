"""JSON round-tripping for analysis results.

The store holds plain-JSON payloads (the disk tier is the server cache's
sharded file format, which writes ``json.dump(..., sort_keys=True)``),
so every order-sensitive mapping is serialized as a list of pairs: disk
round trips must not reorder ``branch_probability`` or ``values``, whose
iteration order reaches rendered output.

Floats round-trip exactly through :mod:`json` (``repr`` based), and
infinite bound offsets are encoded as the strings ``"inf"``/``"-inf"``
so payloads stay within strict JSON.  ``deserialization`` raises
:class:`PayloadError` on any malformed document; callers treat that as
a store miss, never as an error.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core import counters as counters_mod
from repro.core.bounds import Bound
from repro.core.propagation import FunctionPrediction
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP
from repro.ir.function import Function


class PayloadError(ValueError):
    """A stored payload does not decode to a valid result."""


# -- bounds / ranges ---------------------------------------------------------


def _offset_to_json(offset):
    if isinstance(offset, float) and math.isinf(offset):
        return "inf" if offset > 0 else "-inf"
    return offset


def _offset_from_json(data):
    if data == "inf":
        return math.inf
    if data == "-inf":
        return -math.inf
    if not isinstance(data, (int, float)):
        raise PayloadError(f"bad bound offset {data!r}")
    return data


def bound_to_json(bound: Bound) -> list:
    return [_offset_to_json(bound.offset), bound.symbol]


def bound_from_json(data) -> Bound:
    if not isinstance(data, list) or len(data) != 2:
        raise PayloadError(f"bad bound {data!r}")
    offset, symbol = data
    if symbol is not None and not isinstance(symbol, str):
        raise PayloadError(f"bad bound symbol {symbol!r}")
    return Bound(_offset_from_json(offset), symbol)


def rangeset_to_json(rangeset: RangeSet) -> dict:
    if rangeset.is_top:
        return {"k": "top"}
    if rangeset.is_bottom:
        return {"k": "bottom"}
    return {
        "k": "set",
        "r": [
            [
                sr.probability,
                bound_to_json(sr.lo),
                bound_to_json(sr.hi),
                sr.stride,
            ]
            for sr in rangeset.ranges
        ],
    }


def rangeset_from_json(data) -> RangeSet:
    if not isinstance(data, dict):
        raise PayloadError(f"bad rangeset {data!r}")
    kind = data.get("k")
    if kind == "top":
        return TOP
    if kind == "bottom":
        return BOTTOM
    if kind != "set":
        raise PayloadError(f"bad rangeset kind {kind!r}")
    ranges = []
    for item in data.get("r", ()):
        if not isinstance(item, list) or len(item) != 4:
            raise PayloadError(f"bad range {item!r}")
        probability, lo, hi, stride = item
        ranges.append(
            StridedRange(
                float(probability),
                bound_from_json(lo),
                bound_from_json(hi),
                int(stride),
            )
        )
    # Ranges were normalised before storage; rebuild the set verbatim
    # instead of re-compacting through from_ranges.
    return RangeSet(RangeSet._SET_KIND, tuple(ranges))


# -- counters ----------------------------------------------------------------


def counters_to_json(counters: counters_mod.Counters) -> dict:
    return counters.as_dict()


def counters_from_json(data) -> counters_mod.Counters:
    counters = counters_mod.Counters()
    if not isinstance(data, dict):
        raise PayloadError(f"bad counters {data!r}")
    for field, value in data.items():
        if field in counters.__slots__:
            setattr(counters, field, value)
    return counters


# -- predictions -------------------------------------------------------------


def _pairs(mapping: Dict, encode=lambda v: v) -> List[list]:
    return [[key, encode(value)] for key, value in mapping.items()]


def _from_pairs(data, decode=lambda v: v) -> Dict:
    if not isinstance(data, list):
        raise PayloadError(f"bad pair list {data!r}")
    out = {}
    for item in data:
        if not isinstance(item, list) or len(item) != 2:
            raise PayloadError(f"bad pair {item!r}")
        out[item[0]] = decode(item[1])
    return out


def prediction_to_json(prediction: FunctionPrediction) -> dict:
    return {
        "branch_probability": _pairs(prediction.branch_probability),
        "edge_frequency": [
            [src, dst, freq]
            for (src, dst), freq in prediction.edge_frequency.items()
        ],
        "block_frequency": _pairs(prediction.block_frequency),
        "values": _pairs(prediction.values, rangeset_to_json),
        "used_heuristic": sorted(prediction.used_heuristic),
        "counters": counters_to_json(prediction.counters),
        "return_set": rangeset_to_json(prediction.return_set),
        "aborted": prediction.aborted,
        "derived": sorted(prediction.derived),
        "widened": sorted(prediction.widened),
    }


def prediction_from_json(function: Function, data) -> FunctionPrediction:
    if not isinstance(data, dict):
        raise PayloadError(f"bad prediction {data!r}")
    try:
        edge_frequency: Dict[Tuple[str, str], float] = {}
        for item in data["edge_frequency"]:
            if not isinstance(item, list) or len(item) != 3:
                raise PayloadError(f"bad edge {item!r}")
            edge_frequency[(item[0], item[1])] = item[2]
        return FunctionPrediction(
            function,
            branch_probability=_from_pairs(data["branch_probability"]),
            edge_frequency=edge_frequency,
            block_frequency=_from_pairs(data["block_frequency"]),
            values=_from_pairs(data["values"], rangeset_from_json),
            used_heuristic=set(data["used_heuristic"]),
            counters=counters_from_json(data["counters"]),
            return_set=rangeset_from_json(data["return_set"]),
            aborted=bool(data["aborted"]),
            derived=set(data["derived"]),
            widened=set(data["widened"]),
        )
    except (KeyError, TypeError) as error:
        raise PayloadError(f"malformed prediction payload: {error}") from error


def rangeset_map_to_json(mapping: Dict[str, RangeSet]) -> List[list]:
    return _pairs(mapping, rangeset_to_json)


def rangeset_map_from_json(data) -> Dict[str, RangeSet]:
    return _from_pairs(data, rangeset_from_json)


def optional_rangeset_to_json(rangeset: Optional[RangeSet]):
    return None if rangeset is None else rangeset_to_json(rangeset)
