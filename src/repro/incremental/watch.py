"""The ``repro watch`` polling loop.

Watches source files, re-renders a file's analysis whenever its content
changes, and keeps the process-local :class:`IncrementalStore` warm so
each recheck re-analyses only the edited function plus its
summary-dependents (see :mod:`repro.incremental.driver`) -- the
editor-loop mode ROADMAP describes.

The loop is deliberately plain polling (``mtime`` first, then a content
hash to ignore ``touch``-style no-ops): it needs no platform watcher
dependencies and the analysis itself dwarfs a ``stat`` per interval.
Rendering is injected as a callback so the CLI keeps sole ownership of
output formats; each re-render emits a ``watch.recheck`` trace event
carrying the reanalyzed/replayed function counts.

Time sources are injectable for the tests (a fake clock drives the loop
deterministically); ``max_cycles`` bounds the number of poll rounds so
smoke tests and benchmarks can run the loop to completion.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from typing import Callable, List, Optional, Sequence

#: render(path, source) -> (text, outcome, error) where ``outcome`` is
#: an IncrementalOutcome (or None) and ``error`` a message (or None).
RenderFn = Callable[[str, str], tuple]


class _Watched:
    __slots__ = ("path", "mtime", "digest", "missing")

    def __init__(self, path: str):
        self.path = path
        self.mtime: Optional[float] = None
        self.digest: Optional[str] = None
        self.missing = False


def _content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def run_watch(
    paths: Sequence[str],
    render: RenderFn,
    *,
    interval_s: float = 0.5,
    max_cycles: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
    out=None,
    err=None,
) -> int:
    """Watch ``paths``, re-rendering on content change.  Returns 0.

    Every file renders once up front; afterwards each poll cycle
    rechecks files whose mtime moved and whose content hash actually
    changed.  ``max_cycles`` of N stops after N poll cycles (None runs
    until KeyboardInterrupt).
    """
    from repro.observability import events as trace_events
    from repro.observability import tracer as tracing

    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    tracer = tracing.active()
    watched: List[_Watched] = [_Watched(path) for path in paths]

    def recheck(state: _Watched, source: str, initial: bool) -> None:
        started = time.perf_counter()
        text, outcome, error = render(state.path, source)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if error is not None:
            err.write(f"watch: {state.path}: {error}\n")
            err.flush()
            return
        reanalyzed = len(outcome.reanalyzed) if outcome is not None else 0
        replayed = len(outcome.replayed) if outcome is not None else 0
        out.write(f"== {state.path} ==\n")
        out.write(text)
        if not text.endswith("\n"):
            out.write("\n")
        out.flush()
        err.write(
            f"watch: {state.path} reanalyzed={reanalyzed} "
            f"replayed={replayed} ({elapsed_ms:.1f} ms)\n"
        )
        err.flush()
        tracer.emit(
            trace_events.WatchRecheck(
                path=state.path,
                reanalyzed=reanalyzed,
                replayed=replayed,
                elapsed_ms=elapsed_ms,
                initial=initial,
            )
        )

    def poll(state: _Watched, initial: bool = False) -> None:
        try:
            mtime = os.stat(state.path).st_mtime
        except OSError:
            if not state.missing:
                err.write(f"watch: {state.path}: missing (waiting)\n")
                err.flush()
            state.missing = True
            return
        if state.missing:
            err.write(f"watch: {state.path}: back\n")
            err.flush()
        state.missing = False
        if not initial and mtime == state.mtime:
            return
        state.mtime = mtime
        try:
            with open(state.path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            err.write(f"watch: {state.path}: {error}\n")
            err.flush()
            return
        digest = _content_digest(source)
        if digest == state.digest:
            return  # touched, not changed
        state.digest = digest
        recheck(state, source, initial)

    for state in watched:
        poll(state, initial=True)

    cycles = 0
    try:
        while max_cycles is None or cycles < max_cycles:
            sleep(interval_s)
            cycles += 1
            for state in watched:
                poll(state)
    except KeyboardInterrupt:
        err.write("watch: interrupted\n")
        err.flush()
    return 0
