"""Property test: loop derivation vs. brute-force simulation.

For randomly generated counted loops, the derived range of the header
phi must cover exactly the values the header actually observes (the
initial value, every intermediate, and the exit value).
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis
from repro.lang import compile_source


def simulate_header_values(init, relop, bound, step):
    """All values the loop header phi takes at runtime."""
    compare = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "!=": lambda a, b: a != b,
    }[relop]
    values = []
    i = init
    for _ in range(10_000):
        values.append(i)
        if not compare(i, bound):
            return values
        i += step
    raise AssertionError("simulation did not terminate")


def derived_support(prediction, variable="i"):
    rangeset = prediction.values[f"{variable}.1"]
    assert rangeset.is_set, rangeset
    values = set()
    for r in rangeset.ranges:
        lo = int(r.lo.offset)
        hi = int(r.hi.offset)
        step = r.stride if r.stride else 1
        values.update(range(lo, hi + 1, step))
    return values


@settings(max_examples=120, deadline=None)
@given(
    init=st.integers(min_value=-30, max_value=30),
    bound=st.integers(min_value=-30, max_value=30),
    step=st.integers(min_value=1, max_value=5),
    relop=st.sampled_from(["<", "<="]),
    direction=st.sampled_from(["up", "down"]),
)
def test_derived_range_matches_simulation(init, bound, step, relop, direction):
    if direction == "up":
        update = f"i = i + {step};"
        condition = f"i {relop} {bound}"
        observed = simulate_header_values(init, relop, bound, step)
    else:
        update = f"i = i - {step};"
        flipped = {"<": ">", "<=": ">="}[relop]
        condition = f"i {flipped} {bound}"
        observed = simulate_header_values(init, flipped, bound, -step)
    source = (
        f"func main(n) {{ var t = 0; var i = {init}; "
        f"while ({condition}) {{ t = t + 1; {update} }} return t; }}"
    )
    module = compile_source(source)
    function = module.function("main")
    info = prepare_for_analysis(function)
    prediction = analyse_function(function, info)
    support = derived_support(prediction)
    missing = set(observed) - support
    assert not missing, (
        f"derived {sorted(support)} misses observed {sorted(missing)}\n{source}"
    )
    # Tightness: the derived support should not wildly over-approximate.
    assert len(support) <= len(set(observed)) + 2, (
        f"derived {sorted(support)} much larger than observed "
        f"{sorted(set(observed))}\n{source}"
    )


@settings(max_examples=60, deadline=None)
@given(
    init=st.integers(min_value=0, max_value=20),
    trip_count=st.integers(min_value=1, max_value=15),
    step=st.integers(min_value=1, max_value=4),
)
def test_ne_termination_exact(init, trip_count, step):
    # trip_count >= 1: a zero-trip "while (i != init)" loop soundly
    # widens to an unbounded range (the ne bound equals the start and
    # cannot act as a forward limit), which is not the exactness regime
    # this test targets.
    bound = init + trip_count * step  # exactly divisible: terminates
    source = (
        f"func main(n) {{ var i = {init}; "
        f"while (i != {bound}) {{ i = i + {step}; }} return i; }}"
    )
    module = compile_source(source)
    function = module.function("main")
    info = prepare_for_analysis(function)
    prediction = analyse_function(function, info)
    observed = set(range(init, bound + 1, step))
    support = derived_support(prediction)
    assert observed <= support
    assert len(support) <= len(observed) + 2
