"""Shared plain-text renderers for analysis results.

Both front ends -- the one-shot CLI (``repro predict`` and friends) and
the serving layer (``repro serve`` / ``repro submit``) -- promise
*byte-identical* output for the same program and configuration.  The
only robust way to keep that promise is to render in exactly one place;
this module is that place.  Every function returns the complete text
**including the trailing newline**, so callers write it verbatim
(``sys.stdout.write`` on the CLI, the ``output`` field of a server
response) instead of re-assembling lines.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

BranchKey = Tuple[str, str]


def branch_table(
    branches: Dict[BranchKey, float], heuristic: Set[BranchKey]
) -> str:
    """The ``repro predict`` table: one row per conditional branch.

    ``branches`` maps ``(function, label)`` to P(taken); ``heuristic``
    names the subset whose probability came from the fallback predictor
    rather than from value ranges.
    """
    lines = [f"{'function':<14s} {'branch':<12s} {'P(taken)':>9s}  source"]
    for (function, label), probability in sorted(branches.items()):
        marker = "heuristic" if (function, label) in heuristic else "ranges"
        lines.append(f"{function:<14s} {label:<12s} {probability:>8.1%}  {marker}")
    return "\n".join(lines) + "\n"


def ranges_listing(prediction) -> str:
    """The ``repro ranges`` listing: final range set per SSA variable."""
    lines = []
    for name, function_prediction in sorted(prediction.functions.items()):
        lines.append(f"func {name}:")
        for ssa_name in sorted(function_prediction.values):
            lines.append(f"  {ssa_name:12s} {function_prediction.values[ssa_name]}")
    return "\n".join(lines) + "\n" if lines else ""


def ir_dump(module) -> str:
    """The ``repro ir`` dump: canonicalised SSA IR with predecessors."""
    from repro.ir import format_module

    return format_module(module, show_preds=True) + "\n"


def run_report(result, profile: bool = False) -> str:
    """The ``repro run`` report: return value, steps, optional profile."""
    lines = [
        f"return value: {result.return_value}",
        f"steps:        {result.steps}",
    ]
    if profile:
        lines.append("")
        lines.append(
            f"{'function':<14s} {'branch':<12s} {'taken':>8s} {'not':>8s} {'P':>7s}"
        )
        for (function, label), counts in sorted(result.branch_counts.items()):
            total = counts[0] + counts[1]
            probability = counts[0] / total if total else 0.0
            lines.append(
                f"{function:<14s} {label:<12s} {counts[0]:>8d} {counts[1]:>8d} "
                f"{probability:>6.1%}"
            )
    return "\n".join(lines) + "\n"
