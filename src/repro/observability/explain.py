"""Branch explain mode: why is ``main/b3`` predicted 87.5%?

Replays the provenance recorded by the tracer during one analysis run:
for a ranges-predicted branch, the controlling SSA variable, its final
weighted range set, and the comparison rule applied; for a branch whose
controlling range is bottom, the exact Ball-Larus heuristic chain and
the Dempster-Shafer combination walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import VRPConfig
from repro.core.predictor import VRPPredictor
from repro.heuristics.combine import dempster_shafer_steps
from repro.observability.events import BranchResolution, HeuristicChain, RoundCap
from repro.observability.tracer import Tracer, use

CMP_SYMBOLS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

#: Display text for the per-branch provenance tags
#: (:meth:`~repro.core.interprocedural.ModulePrediction.branch_provenance`).
PROVENANCE_TEXT = {
    "interprocedural": "interprocedural summary",
    "intraprocedural": "intraprocedural propagation",
    "heuristic": "heuristic fallback",
}


@dataclass
class BranchExplanation:
    """Human-readable provenance for one branch probability."""

    function: str
    label: str
    probability: float
    source: str  # "ranges" | "heuristic"
    cond: Optional[str] = None
    cond_range: Optional[str] = None
    cmp_op: Optional[str] = None
    operands: Tuple[Tuple[str, str], ...] = ()
    heuristics: Tuple[Tuple[str, float], ...] = ()
    combination_mode: str = "dempster-shafer"
    #: "interprocedural" | "intraprocedural" | "heuristic" -- whether the
    #: controlling ranges came from a cross-function summary, purely
    #: local propagation, or the Ball-Larus fallback.
    provenance: str = "intraprocedural"
    notes: List[str] = field(default_factory=list)

    @property
    def branch_id(self) -> str:
        return f"{self.function}/{self.label}"

    def lines(self) -> List[str]:
        reason = (
            "predicted from value ranges"
            if self.source == "ranges"
            else "heuristic fallback (controlling range is bottom)"
        )
        out = [f"{self.branch_id}: P(true) = {self.probability:.1%}  [{reason}]"]
        out.append(
            "  provenance: "
            f"{PROVENANCE_TEXT.get(self.provenance, self.provenance)}"
        )
        if self.cmp_op is not None and len(self.operands) == 2:
            symbol = CMP_SYMBOLS.get(self.cmp_op, self.cmp_op)
            (lhs, _), (rhs, _) = self.operands
            out.append(f"  condition: {lhs} {symbol} {rhs}")
            out.append("  controlling ranges:")
            for name, rangeset in self.operands:
                out.append(f"    {name:<12s} {rangeset}")
        elif self.cond is not None:
            out.append(f"  condition: {self.cond} != 0")
        if self.source == "ranges" and self.cond is not None:
            out.append(
                f"  branch tests {self.cond} != 0 with {self.cond} = "
                f"{self.cond_range}"
            )
        if self.source == "heuristic":
            if self.heuristics:
                out.append(
                    f"  Ball-Larus heuristic chain ({self.combination_mode}):"
                )
                steps = dempster_shafer_steps([p for _, p in self.heuristics])
                for (name, estimate), combined in zip(self.heuristics, steps):
                    out.append(
                        f"    {name:<12s} P={estimate:5.3f}  -> combined {combined:5.3f}"
                    )
            else:
                out.append(
                    "  no heuristic applied: default branch probability used"
                )
        out.extend(f"  note: {note}" for note in self.notes)
        return out

    def render(self) -> str:
        return "\n".join(self.lines())


def explain_module(
    module,
    ssa_infos,
    config: Optional[VRPConfig] = None,
    interprocedural: bool = True,
    entry: str = "main",
) -> Dict[Tuple[str, str], BranchExplanation]:
    """Explanations for every conditional branch of a prepared module.

    Runs value range propagation once under a recording tracer and
    turns the provenance events into :class:`BranchExplanation` objects
    keyed by ``(function, label)``.
    """
    tracer = Tracer()
    with use(tracer):
        predictor = VRPPredictor(config=config, interprocedural=interprocedural)
        prediction = predictor.predict_module(module, ssa_infos, entry=entry)

    resolutions: Dict[Tuple[str, str], BranchResolution] = {}
    for event in tracer.events_of(BranchResolution):
        resolutions[(event.function, event.label)] = event
    chains: Dict[Tuple[str, str], HeuristicChain] = {}
    for event in tracer.events_of(HeuristicChain):
        chains[(event.function, event.label)] = event

    capped_functions: set = set()
    cap_rounds = 0
    for event in tracer.events_of(RoundCap):
        capped_functions.update(event.functions)
        cap_rounds = event.rounds

    heuristic_branches = prediction.heuristic_branches()
    out: Dict[Tuple[str, str], BranchExplanation] = {}
    for key, probability in sorted(prediction.all_branches().items()):
        function, label = key
        source = "heuristic" if key in heuristic_branches else "ranges"
        explanation = BranchExplanation(
            function=function,
            label=label,
            probability=probability,
            source=source,
            provenance=prediction.branch_provenance(function, label)
            if hasattr(prediction, "branch_provenance")
            else ("heuristic" if source == "heuristic" else "intraprocedural"),
        )
        if function in capped_functions:
            explanation.notes.append(
                f"interprocedural round cap hit after {cap_rounds} rounds: "
                f"ranges in this recursive component may not have converged"
            )
        resolution = resolutions.get(key)
        if resolution is not None:
            explanation.cond = resolution.cond
            explanation.cond_range = resolution.cond_range
            explanation.cmp_op = resolution.cmp_op
            explanation.operands = resolution.operands
        chain = chains.get(key)
        if source == "heuristic" and chain is not None:
            explanation.heuristics = chain.chain
            explanation.combination_mode = chain.mode
        prediction_for_fn = prediction.functions.get(function)
        if prediction_for_fn is not None and prediction_for_fn.aborted:
            explanation.notes.append(
                "fixed point was cut short by the safety valve"
            )
        out[key] = explanation
    return out


def explain_branch(
    module,
    ssa_infos,
    function: str,
    label: str,
    config: Optional[VRPConfig] = None,
    interprocedural: bool = True,
    entry: str = "main",
) -> BranchExplanation:
    """Explanation for one branch; raises KeyError if it does not exist."""
    explanations = explain_module(
        module,
        ssa_infos,
        config=config,
        interprocedural=interprocedural,
        entry=entry,
    )
    try:
        return explanations[(function, label)]
    except KeyError:
        known = ", ".join(f"{f}/{l}" for f, l in sorted(explanations))
        raise KeyError(
            f"no conditional branch {function}/{label}; known branches: {known}"
        ) from None
