"""Worker pool: bounded queue, atomic batches, drain semantics."""

import threading

import pytest

from repro.server.workers import PoolClosedError, QueueFullError, WorkerPool


def blocked_jobs(pool, count):
    """Occupy ``count`` workers with jobs parked on an Event."""
    release = threading.Event()
    running = threading.Semaphore(0)

    def job():
        running.release()
        release.wait(timeout=10)

    futures = [pool.submit(job) for _ in range(count)]
    for _ in range(count):
        assert running.acquire(timeout=5)
    return release, futures


class TestSubmission:
    def test_runs_and_returns(self):
        pool = WorkerPool(workers=2, queue_size=4)
        try:
            assert pool.submit(lambda: 21 * 2).result(timeout=5) == 42
        finally:
            pool.shutdown(timeout=5)

    def test_exceptions_propagate_through_the_future(self):
        pool = WorkerPool(workers=1, queue_size=4)
        try:
            future = pool.submit(lambda: 1 // 0)
            with pytest.raises(ZeroDivisionError):
                future.result(timeout=5)
        finally:
            pool.shutdown(timeout=5)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(queue_size=0)


class TestBackpressure:
    def test_queue_full_raises(self):
        pool = WorkerPool(workers=1, queue_size=2)
        release, _ = blocked_jobs(pool, 1)
        try:
            pool.submit(lambda: 1)
            pool.submit(lambda: 2)  # queue now at capacity
            with pytest.raises(QueueFullError):
                pool.submit(lambda: 3)
        finally:
            release.set()
            pool.shutdown(timeout=5)

    def test_running_jobs_do_not_count_against_the_queue(self):
        pool = WorkerPool(workers=2, queue_size=1)
        release, _ = blocked_jobs(pool, 2)
        try:
            # Both workers busy, queue empty: one more must fit.
            future = pool.submit(lambda: 99)
            with pytest.raises(QueueFullError):
                pool.submit(lambda: 100)
            release.set()
            assert future.result(timeout=5) == 99
        finally:
            release.set()
            pool.shutdown(timeout=5)

    def test_batch_is_atomic(self):
        pool = WorkerPool(workers=1, queue_size=2)
        release, _ = blocked_jobs(pool, 1)
        try:
            pool.submit(lambda: 1)  # one slot left
            with pytest.raises(QueueFullError):
                pool.submit_many(
                    [(lambda: 2, (), {}), (lambda: 3, (), {})]
                )
            # The failed batch must not have consumed the free slot.
            future = pool.submit(lambda: 4)
            release.set()
            assert future.result(timeout=5) == 4
        finally:
            release.set()
            pool.shutdown(timeout=5)

    def test_high_water_tracks_peak_queue_depth(self):
        pool = WorkerPool(workers=1, queue_size=4)
        release, _ = blocked_jobs(pool, 1)
        try:
            pool.submit(lambda: 1)
            pool.submit(lambda: 2)
            assert pool.high_water() == 2
        finally:
            release.set()
            pool.shutdown(timeout=5)


class TestDrain:
    def test_drain_waits_for_inflight_work(self):
        pool = WorkerPool(workers=2, queue_size=4)
        results = []
        release, _ = blocked_jobs(pool, 1)
        pool.submit(lambda: results.append("done"))
        threading.Timer(0.05, release.set).start()
        assert pool.shutdown(timeout=5) is True
        assert results == ["done"]
        assert pool.depth() == 0

    def test_drained_pool_rejects_new_work(self):
        pool = WorkerPool(workers=1, queue_size=4)
        pool.shutdown(timeout=5)
        with pytest.raises(PoolClosedError):
            pool.submit(lambda: 1)

    def test_drain_times_out_on_stuck_work(self):
        pool = WorkerPool(workers=1, queue_size=4)
        release, _ = blocked_jobs(pool, 1)
        try:
            assert pool.drain(timeout=0.1) is False
        finally:
            release.set()
            pool.shutdown(timeout=5)
