"""Lexer unit tests."""

import pytest

from repro.lang.lexer import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind == TokenKind.INT
        assert token.value == 42

    def test_zero_literal(self):
        assert tokenize("0")[0].value == 0

    def test_hex_literal(self):
        token = tokenize("0xFF")[0]
        assert token.value == 255

    def test_hex_literal_lowercase(self):
        assert tokenize("0x1a")[0].value == 26

    def test_identifier(self):
        token = tokenize("counter_2")[0]
        assert token.kind == TokenKind.IDENT
        assert token.text == "counter_2"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_tmp")[0].kind == TokenKind.IDENT

    def test_keyword_recognised(self):
        token = tokenize("while")[0]
        assert token.kind == TokenKind.KEYWORD

    def test_keyword_prefix_is_identifier(self):
        token = tokenize("whilex")[0]
        assert token.kind == TokenKind.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "op",
        ["+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&",
         "||", "!", "&", "|", "^", "<<", ">>", "="],
    )
    def test_operator(self, op):
        token = tokenize(op)[0]
        assert token.kind == TokenKind.OP
        assert token.text == op

    def test_maximal_munch_shift_left(self):
        assert texts("a << b") == ["a", "<<", "b"]

    def test_maximal_munch_le(self):
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_adjacent_lt(self):
        assert texts("a < < b") == ["a", "<", "<", "b"]

    def test_logical_and_vs_bitand(self):
        assert texts("a && b & c") == ["a", "&&", "b", "&", "c"]


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_whitespace_mix(self):
        assert texts("  a\t\n  b ") == ["a", "b"]


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a $ b")
        assert "$" in str(excinfo.value)

    def test_float_literal_rejected(self):
        with pytest.raises(LexError):
            tokenize("1.5")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0xZZ")


class TestFullProgram:
    def test_paper_example_tokenises(self):
        source = """
        func main(n) {
          for (x = 0; x < 10; x = x + 1) {
            if (x > 7) { y = 1; } else { y = x; }
          }
          return n;
        }
        """
        tokens = tokenize(source)
        assert tokens[-1].kind == TokenKind.EOF
        assert sum(1 for t in tokens if t.is_keyword("if")) == 1
        assert sum(1 for t in tokens if t.is_punct("{")) == 4
