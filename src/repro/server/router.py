"""Consistent-hash routing of requests onto shards.

The sharded daemon keys every request by its content address
(:func:`repro.server.cache.request_key`), so the router's job is to
send equal keys -- and therefore repeat and near-duplicate submissions
-- to the *same* shard every time: that shard's in-process memory LRU
and the perf layer's interning/memoization caches are already hot for
it.  A plain ``hash(key) % shards`` would do that too, but it reshuffles
almost every key when the shard count changes; the consistent-hash ring
moves only ~1/N of the key space when a shard is added or removed, so a
rolling resize keeps most of the fleet's cache affinity intact.

Classic construction: each shard owns ``vnodes`` points on a ring of
SHA-256 positions; a key routes to the first shard point at or after
its own hash (wrapping).  Virtual nodes smooth the load -- with 64
points per shard the heaviest shard stays within a few percent of the
mean on uniformly random keys (asserted in ``tests/server/test_router.py``).

Everything is deterministic: the ring depends only on ``(shards,
vnodes)``, never on interpreter hash randomisation, so the front end,
tests, and an external load balancer can all compute identical routes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

#: Ring points per shard; enough to keep load skew small without making
#: ring construction or memory noticeable.
DEFAULT_VNODES = 64


def _position(label: str) -> int:
    """A ring position: the first 8 bytes of SHA-256, as an integer."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over ``shards`` shard ids."""

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards = shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_position(f"shard:{shard}:vnode:{vnode}"), shard))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def route(self, key: str) -> int:
        """The shard id owning ``key`` (stable across processes)."""
        if self.shards == 1:
            return 0
        position = _position(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def distribution(self, keys) -> Dict[int, int]:
        """How many of ``keys`` land on each shard (diagnostics/tests)."""
        counts: Dict[int, int] = {shard: 0 for shard in range(self.shards)}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
