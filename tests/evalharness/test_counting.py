"""Work-count (Figure 5/6) harness tests."""

import pytest

from repro.evalharness.counting import (
    linearity_ratio,
    measure_scaling,
    measure_source,
    synthetic_program,
)
from repro.lang import compile_source


class TestSyntheticPrograms:
    def test_generated_source_compiles(self):
        module = compile_source(synthetic_program(5))
        assert "main" in module.functions

    def test_size_scales_with_units(self):
        small = compile_source(synthetic_program(2)).instruction_count()
        large = compile_source(synthetic_program(20)).instruction_count()
        assert large > 5 * small


class TestMeasurement:
    def test_measure_source_counts_positive(self):
        instructions, evaluations, subops = measure_source(synthetic_program(3))
        assert instructions > 0
        assert evaluations > 0
        assert subops > 0

    def test_measure_scaling_monotone(self):
        points = measure_scaling([2, 8, 16])
        instructions = [p[0] for p in points]
        evaluations = [p[1] for p in points]
        assert instructions == sorted(instructions)
        assert evaluations == sorted(evaluations)

    def test_near_linear_growth(self):
        points = measure_scaling([4, 16, 48])
        ratio = linearity_ratio([(p[0], p[1]) for p in points])
        # The paper's claim: linear in practice.  Allow modest drift.
        assert ratio < 3.0

    def test_linearity_ratio_edge_cases(self):
        assert linearity_ratio([]) == 1.0
        assert linearity_ratio([(10, 100)]) == 1.0
        assert linearity_ratio([(10, 100), (20, 200)]) == pytest.approx(1.0)
        assert linearity_ratio([(10, 100), (20, 800)]) == pytest.approx(4.0)
