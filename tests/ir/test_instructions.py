"""Instruction class tests."""

import pytest

from repro.ir.instructions import (
    CMP_NEGATION,
    CMP_OPS,
    CMP_SWAP,
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.values import Constant, Temp


class TestConstruction:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp(Temp("t"), "frobnicate", Constant(1), Constant(2))

    def test_unknown_cmp_rejected(self):
        with pytest.raises(ValueError):
            Cmp(Temp("t"), "spaceship", Constant(1), Constant(2))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp(Temp("t"), "sqrt", Constant(1))

    def test_result_of_store_is_none(self):
        assert Store("a", Constant(0), Constant(1)).result is None

    def test_result_of_void_call_is_none(self):
        assert Call(None, "f", []).result is None


class TestOperands:
    def test_binop_operands(self):
        instr = BinOp(Temp("t"), "add", Temp("a"), Constant(2))
        assert instr.operands() == [Temp("a"), Constant(2)]

    def test_replace_operand_both_sides(self):
        instr = BinOp(Temp("t"), "add", Temp("a"), Temp("a"))
        instr.replace_operand(Temp("a"), Temp("b"))
        assert instr.lhs == Temp("b")
        assert instr.rhs == Temp("b")

    def test_replace_in_call_args(self):
        instr = Call(Temp("r"), "f", [Temp("a"), Constant(1), Temp("a")])
        instr.replace_operand(Temp("a"), Constant(9))
        assert instr.args == [Constant(9), Constant(1), Constant(9)]

    def test_replace_branch_condition(self):
        branch = Branch(Temp("c"), "t", "f")
        branch.replace_operand(Temp("c"), Constant(1))
        assert branch.cond == Constant(1)


class TestPhi:
    def test_value_for_label(self):
        phi = Phi(Temp("x"), [("a", Constant(1)), ("b", Temp("y"))])
        assert phi.value_for("b") == Temp("y")

    def test_value_for_missing_label_raises(self):
        phi = Phi(Temp("x"), [("a", Constant(1))])
        with pytest.raises(KeyError):
            phi.value_for("nowhere")

    def test_set_value_for_updates_in_place(self):
        phi = Phi(Temp("x"), [("a", Constant(1))])
        phi.set_value_for("a", Constant(2))
        assert phi.value_for("a") == Constant(2)

    def test_set_value_for_appends_new_label(self):
        phi = Phi(Temp("x"), [("a", Constant(1))])
        phi.set_value_for("b", Constant(3))
        assert len(phi.incomings) == 2

    def test_replace_operand_in_incomings(self):
        phi = Phi(Temp("x"), [("a", Temp("old")), ("b", Temp("keep"))])
        phi.replace_operand(Temp("old"), Temp("new"))
        assert phi.value_for("a") == Temp("new")
        assert phi.value_for("b") == Temp("keep")


class TestTerminators:
    def test_jump_successors(self):
        assert Jump("next").successors() == ["next"]

    def test_branch_successors(self):
        assert Branch(Temp("c"), "yes", "no").successors() == ["yes", "no"]

    def test_return_successors_empty(self):
        assert Return(Constant(0)).successors() == []

    def test_terminator_flags(self):
        assert Jump("x").is_terminator()
        assert Branch(Temp("c"), "a", "b").is_terminator()
        assert Return().is_terminator()
        assert not Copy(Temp("t"), Constant(1)).is_terminator()

    def test_default_return_value_is_zero(self):
        assert Return().value == Constant(0)


class TestCmpTables:
    @pytest.mark.parametrize("op", CMP_OPS)
    def test_negation_is_involution(self, op):
        assert CMP_NEGATION[CMP_NEGATION[op]] == op

    @pytest.mark.parametrize("op", CMP_OPS)
    def test_swap_is_involution(self, op):
        assert CMP_SWAP[CMP_SWAP[op]] == op

    def test_semantics_of_negation(self):
        # x < y  <=>  not (x >= y)
        assert CMP_NEGATION["lt"] == "ge"
        assert CMP_NEGATION["eq"] == "ne"

    def test_semantics_of_swap(self):
        # x < y  <=>  y > x
        assert CMP_SWAP["lt"] == "gt"
        assert CMP_SWAP["le"] == "ge"
        assert CMP_SWAP["eq"] == "eq"


class TestPi:
    def test_pi_records_parent(self):
        pi = Pi(Temp("x.2"), Temp("x.1"), "lt", Constant(10), parent="x.1")
        assert pi.parent == "x.1"
        assert pi.operands() == [Temp("x.1"), Constant(10)]

    def test_pi_rejects_bad_relop(self):
        with pytest.raises(ValueError):
            Pi(Temp("x"), Temp("y"), "between", Constant(1))

    def test_load_operands_exclude_array_name(self):
        load = Load(Temp("v"), "buf", Temp("i"))
        assert load.operands() == [Temp("i")]
