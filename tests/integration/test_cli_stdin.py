"""Reading program text from stdin ('-') across the one-shot commands."""

import io

import pytest

from repro.cli import main

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i > 5) { total = total + i; }
  }
  return total;
}
"""


@pytest.fixture
def from_stdin(monkeypatch):
    def feed(text=PROGRAM):
        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    return feed


class TestStdinParity:
    @pytest.mark.parametrize("command", ["predict", "ranges", "ir"])
    def test_matches_file_input(self, capsys, tmp_path, from_stdin, command):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        assert main([command, str(path)]) == 0
        expected = capsys.readouterr().out
        from_stdin()
        assert main([command, "-"]) == 0
        assert capsys.readouterr().out == expected

    def test_run_from_stdin(self, capsys, from_stdin):
        from_stdin("func main(n) { return n * 2; }")
        assert main(["run", "-", "--args", "21"]) == 0
        assert "return value: 42" in capsys.readouterr().out

    def test_check_from_stdin(self, capsys, from_stdin):
        from_stdin()
        code = main(["check", "-"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert out  # a report was rendered


class TestStdinRestrictions:
    def test_check_rejects_stdin_with_multiple_files(self, tmp_path, from_stdin):
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        from_stdin()
        with pytest.raises(SystemExit):
            main(["check", "-", str(path)])

    def test_check_rejects_stdin_with_jobs(self, from_stdin):
        from_stdin()
        with pytest.raises(SystemExit):
            main(["check", "-", "--jobs", "2"])

    def test_parse_error_from_stdin_is_reported(self, from_stdin):
        from_stdin("func main( { oops")
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "-"])
        assert "error" in str(excinfo.value)
