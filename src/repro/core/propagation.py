"""The value range propagation engine (paper §3.3).

A sparse conditional propagation over SSA form, exactly in the shape of
Wegman–Zadeck constant propagation, generalised per the paper:

* lattice values are weighted range sets, not constants;
* every CFG edge carries an execution *frequency* (the entry block has
  frequency 1; branch out-edges split their block's frequency by the
  predicted probability) -- phi evaluation merges incoming ranges
  weighted by these frequencies;
* loop-carried phis are *derived* via induction templates
  (:mod:`repro.core.derivation`) rather than iterated; phis that fail
  derivation iterate brute-force and are widened after a configurable
  number of re-evaluations;
* branches whose controlling range is ⊥ fall back to a pluggable
  heuristic predictor, as the paper prescribes.

Two worklists drive the fixed point: the FlowWorkList of CFG edges and
the SSAWorkList of SSA (def-use) edges, with the paper's "prefer the
FlowWorkList" ordering by default.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core import counters as counters_mod
from repro.core.bounds import Bound, NEG_INF, POS_INF
from repro.core.config import VRPConfig
from repro.core.derivation import derive_loop_phi
# The perf.memo wrappers gate on the active perf context and fall
# through to the plain implementations, so they are the only call path
# the engine needs; importing the module also installs the
# from_ranges/merge_weighted hooks into repro.core.rangeset.
from repro.core.perf import context as perf_context
from repro.core.perf.memo import (
    boolean_set,
    compare_sets,
    constant_set,
    evaluate_binop,
    evaluate_unop,
    refine_set,
)
from repro.core.perf.stats import stats as perf_stats
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP, merge_weighted
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.ssa import SSAEdges, SSAInfo, build_ssa_edges
from repro.ir.values import Constant, Temp, Undef, Value
from repro.observability import events as trace_events
from repro.observability import tracer as tracing

Edge = Tuple[str, str]

ENTRY_EDGE_SOURCE = "<entry>"

# A branch falls back to heuristics with this sentinel probability source.
HeuristicFn = Callable[[Function, str], float]


class FunctionPrediction:
    """Results of value range propagation over one function."""

    def __init__(
        self,
        function: Function,
        branch_probability: Dict[str, float],
        edge_frequency: Dict[Edge, float],
        block_frequency: Dict[str, float],
        values: Dict[str, RangeSet],
        used_heuristic: Set[str],
        counters: counters_mod.Counters,
        return_set: RangeSet,
        aborted: bool = False,
        *,
        derived: Optional[Set[str]] = None,
        widened: Optional[Set[str]] = None,
    ):
        self.function = function
        #: P(true out-edge) for every block ending in a conditional branch.
        self.branch_probability = branch_probability
        #: Execution frequency of each CFG edge (entry block = 1.0).
        self.edge_frequency = edge_frequency
        #: Execution frequency of each block.
        self.block_frequency = block_frequency
        #: Final range set per SSA name.
        self.values = values
        #: Branch blocks whose probability came from the heuristic fallback.
        self.used_heuristic = used_heuristic
        self.counters = counters
        #: Merged range of all return values (for interprocedural use).
        self.return_set = return_set
        #: True when the safety valve cut the fixed point short.
        self.aborted = aborted
        #: SSA names solved by loop-derivation templates (diagnostics
        #: cite these when reasoning about loop trip counts).
        self.derived = derived if derived is not None else set()
        #: SSA names the engine widened to force convergence (their
        #: ranges are upper approximations, not proofs).
        self.widened = widened if widened is not None else set()

    def probability_of_edge(self, src: str, dst: str) -> float:
        """P(control takes src->dst | control reaches src)."""
        block_freq = self.block_frequency.get(src, 0.0)
        if block_freq <= 0.0:
            return 0.0
        return min(1.0, self.edge_frequency.get((src, dst), 0.0) / block_freq)

    def __repr__(self) -> str:
        return (
            f"FunctionPrediction({self.function.name!r}, "
            f"{len(self.branch_probability)} branches, "
            f"{len(self.used_heuristic)} heuristic fallbacks)"
        )


class PropagationEngine:
    """One value-range-propagation run over a prepared (SSA) function."""

    def __init__(
        self,
        function: Function,
        ssa_info: SSAInfo,
        config: Optional[VRPConfig] = None,
        heuristic: Optional[HeuristicFn] = None,
        param_ranges: Optional[Dict[str, RangeSet]] = None,
        call_effect: Optional[Callable[[Call], RangeSet]] = None,
    ):
        self.function = function
        self.ssa_info = ssa_info
        self.config = config or VRPConfig()
        self.heuristic = heuristic
        self.call_effect = call_effect
        self.cfg = CFG(function)
        self.edges = build_ssa_edges(function, ssa_info)
        self.counters = counters_mod.Counters()
        # Tracing: one attribute check per instrumented site.  With the
        # default NullTracer this stays None and every hook reduces to a
        # single `is not None` test.
        tracer = tracing.active()
        self._trace = tracer if tracer.enabled else None
        # Lattice sanitizer (config.sanitize): same zero-overhead shape
        # as tracing -- None unless enabled, one `is not None` per site.
        if self.config.sanitize:
            from repro.core.sanitize import LatticeSanitizer

            self._sanitize: Optional[LatticeSanitizer] = LatticeSanitizer(
                function.name, self.config
            )
        else:
            self._sanitize = None

        self.values: Dict[str, RangeSet] = {}
        for param, ssa_name in ssa_info.param_names.items():
            provided = (param_ranges or {}).get(param)
            self.values[ssa_name] = provided if provided is not None else BOTTOM

        self.edge_freq: Dict[Edge, float] = {}
        self.branch_prob: Dict[str, float] = {}
        self.used_heuristic: Set[str] = set()
        self.visited: Set[str] = set()
        self.derived: Set[str] = set()
        self.underivable: Set[str] = set()
        self.phi_eval_count: Dict[str, int] = {}
        self.phi_change_count: Dict[str, int] = {}
        self.widened: Set[str] = set()
        # Set when the safety valve cut the fixed point short.
        self.aborted = False
        self.edge_update_count: Dict[Edge, int] = {}

        # Perf layer: activated around run() via the context var so the
        # rangeset-level hooks see it; _transfer_memo is the per-engine
        # operand-identity skip for BinOp/UnOp (id(instr) -> operands,
        # result, and the sub-operation tally to replay on a skip).
        self._perf = bool(self.config.perf)
        self._transfer_memo: Dict[int, Tuple] = {}
        # Per-phi merge skip: id(phi) -> (contributions, result); valid
        # only for merges that did not take the assertion-parent path
        # (that one reads the parent's live value).
        self._phi_memo: Dict[int, Tuple] = {}
        # Per-branch skip: id(branch) -> (cond set, probability, tally).
        self._branch_memo: Dict[int, Tuple] = {}
        # Structural caches (CFG shape never changes during a run):
        # back-edge predecessors per phi and the phi prefix per block.
        self._phi_back_preds: Dict[int, Set[str]] = {}
        self._block_phis: Dict[str, List[Phi]] = {}

        self.flow_list: deque = deque()
        self.flow_pending: Set[Edge] = set()
        self.ssa_list: deque = deque()
        self.ssa_pending: Set[int] = set()
        self._pi_parent: Dict[str, str] = {}
        for block in function.blocks.values():
            for instr in block.instructions:
                if isinstance(instr, Pi) and isinstance(instr.src, Temp):
                    self._pi_parent[instr.dest.name] = instr.src.name

        # Flow-insensitive array-content tracking (config.track_arrays):
        # one range set per array, only ever widening; loads read it.
        self.array_sets: Dict[str, RangeSet] = {}
        self._array_loads: Dict[str, List[Instruction]] = {}
        self._array_update_count: Dict[str, int] = {}
        if self.config.track_arrays:
            for name in function.arrays:
                # Arrays start zero-filled in the toy language.
                self.array_sets[name] = RangeSet.constant(0)
                self._array_loads[name] = []
            for block in function.blocks.values():
                for instr in block.instructions:
                    if isinstance(instr, Load) and instr.array in self._array_loads:
                        self._array_loads[instr.array].append(instr)

    # -- public API ------------------------------------------------------------

    def run(self) -> FunctionPrediction:
        """Propagate to a fixed point and collect the results."""
        with perf_context.activate(self._perf):
            if self._trace is not None:
                with self._trace.span("propagate"):
                    with counters_mod.use(self.counters):
                        self._seed()
                        self._drain()
            else:
                with counters_mod.use(self.counters):
                    self._seed()
                    self._drain()
            if self._sanitize is not None:
                self._sanitize.check_final(self)
            return self._collect()

    # -- worklist machinery --------------------------------------------------------

    def _seed(self) -> None:
        entry = self.function.entry_label
        assert entry is not None
        self.edge_freq[(ENTRY_EDGE_SOURCE, entry)] = 1.0
        self._push_flow((ENTRY_EDGE_SOURCE, entry))

    def _drain(self) -> None:
        # Safety valve: the fixed point is expected in O(instructions)
        # worklist items; runaway churn (a lattice bug) aborts cleanly
        # instead of hanging, leaving the best-so-far results in place.
        budget = 2000 * max(64, self.function.instruction_count())
        processed = 0
        while self.flow_list or self.ssa_list:
            processed += 1
            if processed > budget:
                self.aborted = True
                self.flow_list.clear()
                self.flow_pending.clear()
                self.ssa_list.clear()
                self.ssa_pending.clear()
                break
            if self.config.prefer_flow_list:
                use_flow = bool(self.flow_list)
            else:
                use_flow = bool(self.flow_list) and not self.ssa_list
            if use_flow:
                edge = self.flow_list.popleft()
                self.flow_pending.discard(edge)
                if self._sanitize is not None:
                    self._sanitize.note_item(("flow", edge))
                if self._trace is not None:
                    self._trace.emit(
                        trace_events.WorklistPop(
                            self.function.name, "flow", f"{edge[0]}->{edge[1]}"
                        )
                    )
                self._process_flow_edge(edge)
            else:
                instr = self.ssa_list.popleft()
                self.ssa_pending.discard(id(instr))
                if self._sanitize is not None:
                    self._sanitize.note_item(("ssa", id(instr)))
                if self._trace is not None:
                    self._trace.emit(
                        trace_events.WorklistPop(
                            self.function.name, "ssa", _describe_ssa_item(instr)
                        )
                    )
                self._process_ssa_item(instr)

    def _push_flow(self, edge: Edge) -> None:
        if edge not in self.flow_pending:
            self.counters.flow_pushes += 1
            self.flow_pending.add(edge)
            self.flow_list.append(edge)
            if self._trace is not None:
                self._trace.emit(
                    trace_events.WorklistPush(
                        self.function.name, "flow", f"{edge[0]}->{edge[1]}"
                    )
                )
        else:
            self.counters.flow_dedup_hits += 1

    def _push_uses(self, name: str) -> None:
        for use in self.edges.uses_of.get(name, ()):
            if id(use) not in self.ssa_pending:
                self.counters.ssa_pushes += 1
                self.ssa_pending.add(id(use))
                self.ssa_list.append(use)
                if self._trace is not None:
                    self._trace.emit(
                        trace_events.WorklistPush(
                            self.function.name, "ssa", _describe_ssa_item(use)
                        )
                    )
            else:
                self.counters.ssa_dedup_hits += 1

    # -- frequencies ----------------------------------------------------------------

    def node_frequency(self, label: str) -> float:
        entry = self.function.entry_label
        total = 0.0
        if label == entry:
            total += self.edge_freq.get((ENTRY_EDGE_SOURCE, label), 0.0)
        for pred in self.cfg.predecessors[label]:
            total += self.edge_freq.get((pred, label), 0.0)
        return min(total, self.config.frequency_cap)

    def _set_edge_freq(self, edge: Edge, freq: float) -> None:
        old = self.edge_freq.get(edge, 0.0)
        if abs(freq - old) <= self.config.tolerance * max(1.0, old):
            return
        updates = self.edge_update_count.get(edge, 0)
        if updates >= 64 and abs(freq - old) <= 0.05 * max(1.0, old):
            return  # converging geometric series: stop churning
        self.edge_update_count[edge] = updates + 1
        self.edge_freq[edge] = freq
        self._push_flow(edge)

    # -- flow processing ----------------------------------------------------------------

    def _process_flow_edge(self, edge: Edge) -> None:
        self.counters.flow_edges_processed += 1
        _, target = edge
        block = self.function.block(target)
        first_visit = target not in self.visited
        if first_visit:
            self.visited.add(target)
            for instr in block.instructions:
                self._evaluate(instr)
        else:
            if self._perf:
                phis = self._block_phis.get(target)
                if phis is None:
                    phis = block.phis()
                    self._block_phis[target] = phis
            else:
                phis = block.phis()
            for phi in phis:
                self._evaluate(phi)
            self._evaluate(block.terminator)

    # -- SSA processing ----------------------------------------------------------------

    def _process_ssa_item(self, instr: Instruction) -> None:
        self.counters.ssa_edges_processed += 1
        block = instr.block
        if block is None or block.label not in self.visited:
            return  # the paper's "any in-edge executable" guard
        self._evaluate(instr)

    # -- evaluation ----------------------------------------------------------------

    def _evaluate(self, instr: Instruction) -> None:
        if isinstance(instr, Phi):
            self._evaluate_phi(instr)
        elif isinstance(instr, (Jump, Branch, Return)):
            self._evaluate_terminator(instr)
        elif isinstance(instr, Store):
            if self.config.track_arrays:
                self._evaluate_store(instr)
        else:
            result = instr.result
            if result is None:
                return
            if result.name in self.derived:
                return
            self.counters.expr_evaluations += 1
            if self._perf and isinstance(instr, (BinOp, UnOp)):
                new_value = self._transfer_arith_cached(instr)
            else:
                new_value = self._transfer(instr)
            self._update(result.name, new_value)

    def _update(self, name: str, new_value: RangeSet) -> None:
        old_value = self.values.get(name, TOP)
        if new_value.approx_equal(old_value, self.config.tolerance):
            return
        if self._sanitize is not None:
            self._sanitize.check_transition(name, old_value, new_value)
        if self._trace is not None:
            self._trace.emit(
                trace_events.LatticeTransition(
                    self.function.name, name, str(old_value), str(new_value)
                )
            )
        self.values[name] = new_value
        self._push_uses(name)

    def _transfer_arith_cached(self, instr: Instruction) -> RangeSet:
        """Re-evaluation skip for BinOp/UnOp with identity-unchanged operands.

        With hash-consing, an operand whose lattice value did not change
        since the last evaluation of this instruction is the *same
        object*; the cached result (and its sub-operation tally, for
        byte-identical work counts) can be reused without touching the
        range algebra.  Restricted to BinOp/UnOp: Cmp and Pi results
        also depend on live symbol ranges outside their operands.
        """
        if isinstance(instr, BinOp):
            a = self.value_of(instr.lhs)
            b: Optional[RangeSet] = self.value_of(instr.rhs)
        else:
            a = self.value_of(instr.operand)
            b = None
        record = perf_stats().caches["engine_transfer"]
        cached = self._transfer_memo.get(id(instr))
        if cached is not None and cached[0] is a and cached[1] is b:
            record.hits += 1
            self.counters.sub_operations += cached[3]
            return cached[2]
        record.misses += 1
        before = self.counters.sub_operations
        if b is not None:
            result = evaluate_binop(
                instr.op, a, b, max_ranges=self.config.max_ranges
            )
        else:
            result = evaluate_unop(instr.op, a, self.config.max_ranges)
        self._transfer_memo[id(instr)] = (
            a,
            b,
            result,
            self.counters.sub_operations - before,
        )
        return result

    def value_of(self, operand: Value) -> RangeSet:
        if isinstance(operand, Constant):
            return constant_set(operand.value)
        if isinstance(operand, Undef):
            return BOTTOM
        if isinstance(operand, Temp):
            return self._resolve_symbols(self.values.get(operand.name, TOP))
        raise TypeError(f"unknown operand {operand!r}")

    def _resolve_symbols(self, rangeset: RangeSet) -> RangeSet:
        """Substitute symbols whose own range is a known single constant.

        A derived range like ``[0:k.1]`` becomes ``[0:100]`` once ``k.1``
        is known to be 100 -- derived (final) ranges are written before
        their symbols settle, so resolution happens at use time.
        """
        if not rangeset.is_set or not rangeset.symbols():
            return rangeset
        resolved: List[StridedRange] = []
        changed = False
        for r in rangeset.ranges:
            lo = self._resolve_bound(r.lo)
            hi = self._resolve_bound(r.hi)
            if lo is r.lo and hi is r.hi:
                resolved.append(r)
                continue
            order = lo.compare(hi)
            if order is not None and order > 0:
                return rangeset  # stale symbol value: keep the symbolic form
            resolved.append(StridedRange(r.probability, lo, hi, r.stride))
            changed = True
        if not changed:
            return rangeset
        return RangeSet.from_ranges(resolved, max_ranges=self.config.max_ranges)

    def _resolve_bound(self, bound: Bound, depth: int = 4) -> Bound:
        current = bound
        for _ in range(depth):
            if current.symbol is None:
                return current
            target = self.values.get(current.symbol)
            if target is None or not target.is_set or len(target.ranges) != 1:
                return current
            only = target.ranges[0]
            if not only.is_single():
                return current
            base = only.lo
            if base.symbol == current.symbol:
                return current  # self-referential: stop
            if base.is_numeric() and base.is_finite():
                current = Bound(base.offset + current.offset)
            elif base.symbol is not None:
                current = Bound(base.offset + current.offset, base.symbol)
            else:
                return current
        return current

    def _constant_of(self, operand: Value) -> Optional[int]:
        if isinstance(operand, Constant):
            value = operand.value
            return int(value) if value == int(value) else None
        if isinstance(operand, Temp):
            constant = self.values.get(operand.name, TOP).constant_value()
            if constant is not None and constant == int(constant):
                return int(constant)
        return None

    # -- transfer functions ----------------------------------------------------------------

    def _transfer(self, instr: Instruction) -> RangeSet:
        max_ranges = self.config.max_ranges
        if isinstance(instr, Copy):
            return self.value_of(instr.src)
        if isinstance(instr, BinOp):
            return evaluate_binop(
                instr.op,
                self.value_of(instr.lhs),
                self.value_of(instr.rhs),
                max_ranges=max_ranges,
            )
        if isinstance(instr, UnOp):
            return evaluate_unop(instr.op, self.value_of(instr.operand), max_ranges)
        if isinstance(instr, Cmp):
            return self._transfer_cmp(instr)
        if isinstance(instr, Pi):
            return self._transfer_pi(instr)
        if isinstance(instr, Load):
            if self.config.track_arrays and instr.array in self.array_sets:
                return self.array_sets[instr.array]
            return BOTTOM  # the paper: loads are ⊥ without alias analysis
        if isinstance(instr, Input):
            return BOTTOM
        if isinstance(instr, Call):
            if self.call_effect is not None:
                return self.call_effect(instr)
            return BOTTOM
        raise TypeError(f"no transfer function for {instr!r}")

    def _transfer_cmp(self, instr: Cmp) -> RangeSet:
        lhs = self.value_of(instr.lhs)
        rhs = self.value_of(instr.rhs)
        if lhs.is_top or rhs.is_top:
            return TOP
        if lhs.is_bottom or rhs.is_bottom:
            return BOTTOM
        lhs_name = instr.lhs.name if isinstance(instr.lhs, Temp) else None
        rhs_name = instr.rhs.name if isinstance(instr.rhs, Temp) else None
        if not self.config.symbolic:
            lhs_name = rhs_name = None
        outcome = compare_sets(
            instr.op,
            lhs,
            rhs,
            a_name=lhs_name,
            b_name=rhs_name,
            exact_limit=self.config.exact_count_limit,
            symbol_range=self._symbol_range if self.config.symbolic else None,
        )
        if outcome is None or outcome.unknown_mass > self.config.max_unknown_mass:
            return BOTTOM
        return boolean_set(outcome.estimate())

    def _transfer_pi(self, instr: Pi) -> RangeSet:
        src = self.value_of(instr.src)
        bound = self._refinement_bound(instr.bound)
        if bound is None:
            return src
        refined = refine_set(src, instr.op, bound, max_ranges=self.config.max_ranges)
        if self._sanitize is not None:
            self._sanitize.check_pi(instr, src, refined)
        if self._trace is not None:
            self._trace.emit(
                trace_events.PiRefinement(
                    self.function.name,
                    instr.dest.name,
                    instr.src.name if isinstance(instr.src, Temp) else str(instr.src),
                    instr.op,
                    str(bound),
                    str(src),
                    str(refined),
                )
            )
        return refined

    def _symbol_range(self, name: str, depth: int = 3) -> Optional[RangeSet]:
        """Numeric distribution of a symbol (for comparison integration).

        Sees through chains like ``t = width - 1``: a single symbolic
        value ``[s+c]`` is replaced by ``s``'s numeric distribution
        shifted by ``c``.
        """
        stored = self.values.get(name)
        if stored is None:
            return None
        resolved = self._resolve_symbols(stored)
        if (
            depth > 0
            and resolved.is_set
            and len(resolved.ranges) == 1
            and resolved.ranges[0].is_single()
            and resolved.ranges[0].lo.symbol is not None
        ):
            pivot = resolved.ranges[0].lo
            base = self._symbol_range(pivot.symbol, depth - 1)
            if base is not None and base.is_set and base.is_numeric():
                shifted = [
                    StridedRange(
                        r.probability,
                        r.lo.add_const(pivot.offset),
                        r.hi.add_const(pivot.offset),
                        r.stride,
                    )
                    for r in base.ranges
                ]
                return RangeSet.from_ranges(shifted, max_ranges=self.config.max_ranges)
        return resolved

    def _refinement_bound(self, operand: Value) -> Optional[Bound]:
        constant = self._constant_of(operand)
        if constant is not None:
            return Bound.number(constant)
        if isinstance(operand, Temp) and self.config.symbolic:
            return Bound.symbolic(operand.name)
        return None

    # -- array content tracking (optional extension) ----------------------------------------------------

    def _evaluate_store(self, instr: Store) -> None:
        """Widen the array's content set with the stored value's range.

        Flow-insensitive and monotone: the set only grows, a ⊥ store
        makes it ⊥ for good, and a per-array widening counter bounds the
        number of growth steps -- so loads re-trigger finitely often.
        """
        array = instr.array
        current = self.array_sets.get(array)
        if current is None or current.is_bottom:
            return
        stored = self.value_of(instr.value)
        if stored.is_top:
            return  # not known yet; the store re-evaluates later
        if stored.is_bottom:
            merged: RangeSet = BOTTOM
        else:
            merged = merge_weighted(
                [(1.0, current), (1.0, stored)], max_ranges=self.config.max_ranges
            )
            if not _hull_grew(current, merged):
                # Same support: keep the existing (stable) weights.
                return
            updates = self._array_update_count.get(array, 0) + 1
            self._array_update_count[array] = updates
            if updates > self.config.widen_after:
                merged = _widen(current, merged)
        if merged.approx_equal(current, self.config.tolerance):
            return
        self.array_sets[array] = merged
        for load in self._array_loads.get(array, ()):
            if id(load) not in self.ssa_pending:
                self.counters.ssa_pushes += 1
                self.ssa_pending.add(id(load))
                self.ssa_list.append(load)
                if self._trace is not None:
                    self._trace.emit(
                        trace_events.WorklistPush(
                            self.function.name, "ssa", _describe_ssa_item(load)
                        )
                    )
            else:
                self.counters.ssa_dedup_hits += 1

    # -- phi evaluation (steps 4 and 5) ----------------------------------------------------------------

    def _evaluate_phi(self, phi: Phi) -> None:
        name = phi.dest.name
        if name in self.derived:
            return
        block = phi.block
        assert block is not None
        label = block.label
        back_preds = self._phi_back_preds.get(id(phi)) if self._perf else None
        if back_preds is None:
            back_preds = {
                pred
                for pred, _ in phi.incomings
                if self.cfg.is_back_edge(pred, label)
            }
            if self._perf:
                self._phi_back_preds[id(phi)] = back_preds
        if (
            back_preds
            and self.config.derive_loops
            and name not in self.underivable
        ):
            self.counters.derivations_attempted += 1
            if self._trace is not None:
                with self._trace.span("derive"):
                    outcome = self._derive(phi, back_preds)
                self._trace.emit(
                    trace_events.DerivationAttempt(
                        self.function.name,
                        name,
                        outcome.status,
                        outcome.detail,
                        str(outcome.rangeset) if outcome.rangeset is not None else None,
                    )
                )
            else:
                outcome = self._derive(phi, back_preds)
            if outcome.derived:
                self.counters.derivations_succeeded += 1
                self.derived.add(name)
                assert outcome.rangeset is not None
                self._update(name, outcome.rangeset)
                return
            if outcome.status == "failed":
                self.underivable.add(name)
            # "not_ready": fall through to a merge; derivation retried later.

        self._evaluate_phi_merge(phi, name, label)

    def _derive(self, phi: Phi, back_preds: Set[str]):
        return derive_loop_phi(
            phi,
            back_preds,
            self.edges,
            value_of=lambda n: self.values.get(n, TOP),
            constant_of=self._constant_of,
            symbolic=self.config.symbolic,
            max_ranges=self.config.max_ranges,
        )

    def _evaluate_phi_merge(self, phi: Phi, name: str, label: str) -> None:
        self.counters.phi_evaluations += 1
        self.counters.expr_evaluations += 1
        merged = self._merge_phi(phi, label)
        old = self.values.get(name, TOP)
        if not merged.approx_equal(old, self.config.tolerance):
            changes = self.phi_change_count.get(name, 0) + 1
            self.phi_change_count[name] = changes
            if changes > self.config.freeze_after:
                # Oscillating merge (e.g. an alternating recurrence whose
                # probabilities never settle): freeze at the current value
                # to guarantee termination.
                if self._trace is not None:
                    self._trace.emit(
                        trace_events.PhiMerge(
                            self.function.name,
                            name,
                            label,
                            str(old),
                            widened=name in self.widened,
                            frozen=True,
                        )
                    )
                return
        if name in self.widened:
            # Once widened, stay widened: the hull may only grow further.
            merged = _widen(old, merged)
        elif _hull_grew(old, merged):
            # Only extent growth counts toward widening: probability
            # re-weighting while frequencies converge is not divergence.
            grows = self.phi_eval_count.get(name, 0) + 1
            self.phi_eval_count[name] = grows
            if grows > self.config.widen_after and merged.is_set:
                self.widened.add(name)
                merged = _widen(old, merged)
        if self._trace is not None:
            self._trace.emit(
                trace_events.PhiMerge(
                    self.function.name,
                    name,
                    label,
                    str(merged),
                    widened=name in self.widened,
                    frozen=False,
                )
            )
        self._update(name, merged)

    def _merge_phi(self, phi: Phi, label: str) -> RangeSet:
        contributions: List[Tuple[float, RangeSet]] = []
        positive: List[Tuple[str, Value]] = []
        for pred, incoming in phi.incomings:
            weight = self.edge_freq.get((pred, label), 0.0)
            if weight > 0.0:
                positive.append((pred, incoming))
            contributions.append((weight, self.value_of(incoming)))
        if self._perf:
            # Unchanged in-edge weights and operand identities: reuse the
            # previous merge without re-checking the assertion-parent
            # shape or touching the global memo.  (Tuple equality is
            # cheap here -- interned sets compare by identity first.)
            cached = self._phi_memo.get(id(phi))
            if cached is not None and cached[0] == contributions:
                return cached[1]
        parent = self._common_assertion_parent(positive)
        if parent is not None:
            return self.values.get(parent, TOP)
        merged = merge_weighted(contributions, max_ranges=self.config.max_ranges)
        if self._perf:
            self._phi_memo[id(phi)] = (contributions, merged)
        return merged

    def _common_assertion_parent(
        self, incomings: List[Tuple[str, Value]]
    ) -> Optional[str]:
        """The paper's footnote 4: merging assertion-derived variables of a
        common parent (or with the parent itself) yields the parent's range."""
        if len(incomings) < 2:
            return None
        parent: Optional[str] = None
        any_derived = False
        for _, incoming in incomings:
            if not isinstance(incoming, Temp):
                return None
            root = self._pi_parent.get(incoming.name)
            if root is None:
                root = incoming.name
            else:
                any_derived = True
            if parent is None:
                parent = root
            elif parent != root:
                return None
        return parent if any_derived else None

    # -- terminators (step 7) ----------------------------------------------------------------

    def _evaluate_terminator(self, instr: Instruction) -> None:
        block = instr.block
        assert block is not None
        label = block.label
        freq = self.node_frequency(label)
        if isinstance(instr, Jump):
            self._set_edge_freq((label, instr.target), freq)
            return
        if isinstance(instr, Return):
            return
        assert isinstance(instr, Branch)
        probability = self._branch_probability(instr, label)
        if probability is None:
            return  # still ⊤: leave out-edges unexecutable for now
        old = self.branch_prob.get(label)
        if old is None or abs(probability - old) > self.config.tolerance:
            self.branch_prob[label] = probability
            if self._trace is not None:
                self._emit_branch_resolution(instr, label, probability)
        self._set_edge_freq((label, instr.true_target), freq * probability)
        self._set_edge_freq((label, instr.false_target), freq * (1.0 - probability))

    def _emit_branch_resolution(
        self, instr: Branch, label: str, probability: float
    ) -> None:
        """Record why this branch got its probability (tracing only)."""
        cond = instr.cond
        cond_name = cond.name if isinstance(cond, Temp) else None
        cmp_op: Optional[str] = None
        operands: Tuple[Tuple[str, str], ...] = ()
        if cond_name is not None:
            definition = self.edges.defining_instruction(cond_name)
            if isinstance(definition, Cmp):
                cmp_op = definition.op
                operands = tuple(
                    (
                        operand.name if isinstance(operand, Temp) else str(operand),
                        str(self.value_of(operand)),
                    )
                    for operand in (definition.lhs, definition.rhs)
                )
        self._trace.emit(
            trace_events.BranchResolution(
                self.function.name,
                label,
                "heuristic" if label in self.used_heuristic else "ranges",
                probability,
                cond_name,
                str(self.value_of(cond)),
                cmp_op,
                operands,
            )
        )

    def _branch_probability(self, instr: Branch, label: str) -> Optional[float]:
        cond = self.value_of(instr.cond)
        if cond.is_top:
            return None
        if not self._perf:
            return self._branch_probability_of(instr, label, cond)
        # Identity-unchanged condition: the probability (and the
        # heuristic bookkeeping, which only mutates on a *changed*
        # condition) is unchanged too; replay the comparison's
        # sub-operation tally to keep work counts byte-identical.
        cached = self._branch_memo.get(id(instr))
        if cached is not None and cached[0] is cond:
            self.counters.sub_operations += cached[2]
            return cached[1]
        before = self.counters.sub_operations
        probability = self._branch_probability_of(instr, label, cond)
        self._branch_memo[id(instr)] = (
            cond,
            probability,
            self.counters.sub_operations - before,
        )
        return probability

    def _branch_probability_of(
        self, instr: Branch, label: str, cond: RangeSet
    ) -> Optional[float]:
        if cond.is_set:
            outcome = compare_sets(
                "ne",
                cond,
                constant_set(0),
                exact_limit=self.config.exact_count_limit,
            )
            if outcome is not None and outcome.unknown_mass <= self.config.max_unknown_mass:
                self.used_heuristic.discard(label)
                return outcome.estimate()
        # ⊥ (or undecidable): the paper's heuristic fallback.
        if label not in self.used_heuristic:
            self.counters.heuristic_fallbacks += 1
            self.used_heuristic.add(label)
        if self.heuristic is not None:
            return self.heuristic(self.function, label)
        return self.config.default_branch_probability

    # -- results ----------------------------------------------------------------

    def _collect(self) -> FunctionPrediction:
        block_frequency = {
            label: self.node_frequency(label) for label in self.function.blocks
        }
        return_contributions: List[Tuple[float, RangeSet]] = []
        for label, block in self.function.blocks.items():
            term = block.terminator
            if isinstance(term, Return) and label in self.visited:
                weight = block_frequency.get(label, 0.0)
                if weight > 0.0:
                    return_contributions.append((weight, self.value_of(term.value)))
        return_set = merge_weighted(
            return_contributions, max_ranges=self.config.max_ranges
        )
        edge_frequency = {
            edge: freq
            for edge, freq in self.edge_freq.items()
            if edge[0] != ENTRY_EDGE_SOURCE
        }
        # Materialise never-taken edges at frequency zero so consumers
        # (layout, unreachable-code detection) see the full edge set.
        for edge in self.cfg.edges():
            edge_frequency.setdefault(edge, 0.0)
        return FunctionPrediction(
            function=self.function,
            branch_probability=dict(self.branch_prob),
            edge_frequency=edge_frequency,
            block_frequency=block_frequency,
            values=dict(self.values),
            used_heuristic=set(self.used_heuristic),
            counters=self.counters,
            return_set=return_set,
            aborted=self.aborted,
            derived=set(self.derived),
            widened=set(self.widened),
        )


def _describe_ssa_item(instr: Instruction) -> str:
    """Stable label for a worklist item (trace output only)."""
    result = instr.result
    if result is not None:
        return result.name
    block = instr.block
    return f"{type(instr).__name__.lower()}@{block.label if block else '?'}"


def _hull_grew(old: RangeSet, new: RangeSet) -> bool:
    """True when ``new`` covers values outside ``old``'s hull."""
    if not new.is_set:
        return False
    if not old.is_set:
        return old.is_top  # ⊤ -> anything is growth; ⊥ cannot grow
    old_hull = old.hull()
    new_hull = new.hull()
    if old_hull is None or new_hull is None:
        return True
    lo_cmp = new_hull.lo.compare(old_hull.lo)
    if lo_cmp is None or lo_cmp < 0:
        return True
    hi_cmp = new_hull.hi.compare(old_hull.hi)
    return hi_cmp is None or hi_cmp > 0


def _widen(old: RangeSet, new: RangeSet) -> RangeSet:
    """Stationary widening for churning phis.

    Produces a single hull range that only ever *grows* relative to the
    previous value (sides that grew jump straight to infinity).  Once a
    new evaluation stays inside the widened hull the result equals the
    old value exactly, so the fixed point is reached.
    """
    if not (old.is_set and new.is_set):
        return new
    old_hull = old.hull()
    new_hull = new.hull()
    if old_hull is None or new_hull is None:
        return BOTTOM
    lo = old_hull.lo
    hi = old_hull.hi
    lo_cmp = new_hull.lo.compare(lo)
    if lo_cmp is None or lo_cmp < 0:
        lo = Bound.number(NEG_INF)
    hi_cmp = new_hull.hi.compare(hi)
    if hi_cmp is None or hi_cmp > 0:
        hi = Bound.number(POS_INF)
    stride = math.gcd(old_hull.stride, new_hull.stride)
    return RangeSet.from_ranges([StridedRange(1.0, lo, hi, stride or 1)])


def analyse_function(
    function: Function,
    ssa_info: SSAInfo,
    config: Optional[VRPConfig] = None,
    heuristic: Optional[HeuristicFn] = None,
    param_ranges: Optional[Dict[str, RangeSet]] = None,
    call_effect: Optional[Callable[[Call], RangeSet]] = None,
) -> FunctionPrediction:
    """Run value range propagation over one prepared (SSA-form) function."""
    engine = PropagationEngine(
        function,
        ssa_info,
        config=config,
        heuristic=heuristic,
        param_ranges=param_ranges,
        call_effect=call_effect,
    )
    return engine.run()
