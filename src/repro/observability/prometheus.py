"""Prometheus text exposition (and a validating parser) for ``/metricsz``.

The serving daemon content-negotiates its metrics endpoint: JSON
(the metrics-schema document, unchanged) by default, and the Prometheus
text exposition format version 0.0.4 when the scraper asks for
``text/plain`` / OpenMetrics or appends ``?format=prometheus``.  This
module renders that text from the same
:meth:`repro.server.stats.ServerStats.snapshot` document the JSON path
serves -- one source of numbers, two encodings.

Exposed families (all prefixed ``repro_``):

=====================================  =======  ==========================
family                                 type     labels
=====================================  =======  ==========================
``repro_requests_total``               counter  ``endpoint``
``repro_request_errors_total``         counter  ``endpoint``
``repro_responses_total``              counter  ``status``
``repro_results_total``                counter  ``tier`` (memory/disk/fresh)
``repro_degraded_total``               counter  --
``repro_rejected_total``               counter  ``reason``
``repro_request_latency_seconds``      histogram ``endpoint`` (SLO buckets)
``repro_cache_entries``                gauge    ``tier``
``repro_cache_hits_total``             counter  ``tier``
``repro_cache_misses_total``           counter  ``tier``
``repro_queue_depth``                  gauge    --
``repro_queue_high_water``             gauge    --
``repro_workers``                      gauge    --
``repro_uptime_seconds``               gauge    --
=====================================  =======  ==========================

When the daemon runs with the incremental summary store (``repro serve
--incremental``, see ``docs/INCREMENTAL.md``), four more families are
emitted: ``repro_incremental_function_hits_total`` /
``repro_incremental_function_misses_total`` (functions replayed vs.
reanalyzed) and ``repro_incremental_store_hits_total`` /
``repro_incremental_store_misses_total`` (component lookups, by
``tier``).  Without the store the snapshot has no ``incremental`` key
and the exposition is unchanged.

When the snapshot comes from the sharded tier (it carries a ``shards``
list), per-shard families are appended, all labelled ``shard="0"..``:
``repro_shard_queue_depth`` / ``repro_shard_queue_high_water`` (gauges),
``repro_shard_served_total`` / ``repro_shard_restarts_total`` /
``repro_shard_cache_hits_total`` (counters, the last also by ``tier``),
``repro_shard_alive`` and ``repro_shard_cache_entries`` (gauges).  The
single-process daemon never produces the ``shards`` key, so its
exposition is unchanged by sharding's existence.

Histogram buckets are the serving SLO boundaries
(:data:`repro.server.stats.LATENCY_BUCKETS_MS`, seconds here), rendered
cumulatively with the mandatory ``+Inf`` bucket, ``_sum`` and
``_count`` series -- everything a Prometheus server needs to compute
``histogram_quantile`` over scrapes.

:func:`parse_prometheus_text` is a small strict parser used by the CI
scrape check and the test suite; it understands exactly the exposition
subset written here (``# HELP`` / ``# TYPE`` comments, optionally
labelled samples) and reports structural violations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class MetricFamily:
    """One ``# HELP``/``# TYPE`` block plus its samples, in order."""

    def __init__(self, name: str, kind: str, help_text: str):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help_text = help_text
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(
        self, value: float, labels: Optional[Dict[str, str]] = None, suffix: str = ""
    ) -> None:
        self.samples.append((self.name + suffix, dict(labels or {}), float(value)))

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for name, labels, value in self.samples:
            if labels:
                body = ",".join(
                    f'{key}="{_escape_label(str(val))}"'
                    for key, val in labels.items()
                )
                lines.append(f"{name}{{{body}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines)


def _histogram_family(
    name: str,
    help_text: str,
    per_endpoint: Dict[str, dict],
    bucket_bounds_ms: Sequence[float],
) -> MetricFamily:
    """The per-endpoint latency histogram, cumulative, in seconds."""
    family = MetricFamily(name, "histogram", help_text)
    for endpoint, stats in sorted(per_endpoint.items()):
        histogram = stats.get("histogram", {})
        cumulative = 0
        for bound in bucket_bounds_ms:
            cumulative += int(histogram.get(f"le_{bound}ms", 0))
            family.add(
                cumulative,
                {"endpoint": endpoint, "le": _format_value(bound / 1000.0)},
                suffix="_bucket",
            )
        cumulative += int(histogram.get("le_inf", 0))
        family.add(
            cumulative, {"endpoint": endpoint, "le": "+Inf"}, suffix="_bucket"
        )
        family.add(
            float(stats.get("sum_ms", 0.0)) / 1000.0,
            {"endpoint": endpoint},
            suffix="_sum",
        )
        family.add(
            int(stats.get("count", 0)), {"endpoint": endpoint}, suffix="_count"
        )
    return family


def render_server_metrics(
    server: dict,
    uptime_s: Optional[float] = None,
    workers: Optional[int] = None,
) -> str:
    """The full exposition document for one ``ServerStats.snapshot()``.

    ``server`` is the metrics-schema ``server`` key: ``endpoints``,
    ``responses``, ``results``, ``degraded``, ``rejected``, plus the
    optional ``cache`` and ``queue`` sub-documents the daemon attaches.
    """
    from repro.server.stats import LATENCY_BUCKETS_MS

    families: List[MetricFamily] = []

    endpoints: Dict[str, dict] = server.get("endpoints", {})
    requests = MetricFamily(
        "repro_requests_total", "counter", "Requests finished, by endpoint."
    )
    errors = MetricFamily(
        "repro_request_errors_total",
        "counter",
        "Requests answered with HTTP status >= 400, by endpoint.",
    )
    for endpoint, stats in sorted(endpoints.items()):
        requests.add(int(stats.get("count", 0)), {"endpoint": endpoint})
        errors.add(int(stats.get("errors", 0)), {"endpoint": endpoint})
    families += [requests, errors]

    responses = MetricFamily(
        "repro_responses_total", "counter", "Responses sent, by HTTP status."
    )
    for status, count in sorted(server.get("responses", {}).items()):
        responses.add(int(count), {"status": str(status)})
    families.append(responses)

    results = MetricFamily(
        "repro_results_total",
        "counter",
        "Successful results, by cache tier (fresh = computed).",
    )
    for tier, count in sorted(server.get("results", {}).items()):
        results.add(int(count), {"tier": tier})
    families.append(results)

    degraded = MetricFamily(
        "repro_degraded_total",
        "counter",
        "Responses degraded to heuristics-only under deadline pressure.",
    )
    degraded.add(int(server.get("degraded", 0)))
    families.append(degraded)

    rejected = MetricFamily(
        "repro_rejected_total",
        "counter",
        "Requests refused before analysis, by reason.",
    )
    for reason, count in sorted(server.get("rejected", {}).items()):
        rejected.add(int(count), {"reason": reason})
    families.append(rejected)

    families.append(
        _histogram_family(
            "repro_request_latency_seconds",
            "Request latency by endpoint (SLO bucket boundaries).",
            endpoints,
            LATENCY_BUCKETS_MS,
        )
    )

    cache = server.get("cache")
    if isinstance(cache, dict):
        entries = MetricFamily(
            "repro_cache_entries", "gauge", "Result-cache entries resident, by tier."
        )
        hits = MetricFamily(
            "repro_cache_hits_total", "counter", "Result-cache hits, by tier."
        )
        misses = MetricFamily(
            "repro_cache_misses_total", "counter", "Result-cache misses, by tier."
        )
        for tier in ("memory", "disk"):
            tier_stats = cache.get(tier, {})
            if not isinstance(tier_stats, dict):
                continue
            if "entries" in tier_stats:
                entries.add(int(tier_stats["entries"]), {"tier": tier})
            hits.add(int(tier_stats.get("hits", 0)), {"tier": tier})
            misses.add(int(tier_stats.get("misses", 0)), {"tier": tier})
        families += [entries, hits, misses]

    incremental = server.get("incremental")
    if isinstance(incremental, dict):
        # Emitted only when the daemon runs with the incremental
        # summary store (repro.incremental); absent otherwise, so the
        # pre-incremental exposition is byte-for-byte unchanged.
        function_hits = MetricFamily(
            "repro_incremental_function_hits_total",
            "counter",
            "Functions replayed from the incremental summary store.",
        )
        function_hits.add(int(incremental.get("function_hits", 0)))
        function_misses = MetricFamily(
            "repro_incremental_function_misses_total",
            "counter",
            "Functions reanalyzed on incremental summary-store misses.",
        )
        function_misses.add(int(incremental.get("function_misses", 0)))
        store_hits = MetricFamily(
            "repro_incremental_store_hits_total",
            "counter",
            "Incremental summary-store component hits, by tier.",
        )
        store_misses = MetricFamily(
            "repro_incremental_store_misses_total",
            "counter",
            "Incremental summary-store component misses, by tier.",
        )
        for tier in ("memory", "disk"):
            tier_stats = incremental.get(tier) or {}
            store_hits.add(int(tier_stats.get("hits", 0)), {"tier": tier})
            store_misses.add(int(tier_stats.get("misses", 0)), {"tier": tier})
        families += [function_hits, function_misses, store_hits, store_misses]

    queue = server.get("queue")
    if isinstance(queue, dict):
        depth = MetricFamily(
            "repro_queue_depth", "gauge", "Jobs accepted and not yet finished."
        )
        depth.add(int(queue.get("depth", 0)))
        high_water = MetricFamily(
            "repro_queue_high_water",
            "gauge",
            "Deepest the waiting queue has ever been.",
        )
        high_water.add(int(queue.get("high_water", 0)))
        families += [depth, high_water]

    shards = server.get("shards")
    if isinstance(shards, list) and shards:
        # Per-shard families, emitted only by the sharded tier: the
        # single-process daemon's snapshot has no "shards" key, so its
        # exposition -- every family above, all unlabeled-by-shard --
        # is byte-for-byte what it was before sharding existed
        # (regression-tested in tests/observability/test_prometheus.py).
        shard_depth = MetricFamily(
            "repro_shard_queue_depth",
            "gauge",
            "Requests in flight on the shard (dispatched + waiting).",
        )
        shard_high_water = MetricFamily(
            "repro_shard_queue_high_water",
            "gauge",
            "Deepest the shard's bounded queue has ever been.",
        )
        shard_served = MetricFamily(
            "repro_shard_served_total",
            "counter",
            "Requests the shard process has answered.",
        )
        shard_alive = MetricFamily(
            "repro_shard_alive", "gauge", "1 when the shard process is alive."
        )
        shard_restarts = MetricFamily(
            "repro_shard_restarts_total",
            "counter",
            "Times the shard process was respawned after dying.",
        )
        shard_cache_entries = MetricFamily(
            "repro_shard_cache_entries",
            "gauge",
            "Shard-local memory-cache entries resident.",
        )
        shard_cache_hits = MetricFamily(
            "repro_shard_cache_hits_total",
            "counter",
            "Shard-local result-cache hits, by tier.",
        )
        for shard in shards:
            if not isinstance(shard, dict):
                continue
            label = {"shard": str(shard.get("shard", "?"))}
            queue_doc = shard.get("queue") or {}
            shard_depth.add(int(queue_doc.get("depth", 0)), label)
            shard_high_water.add(int(queue_doc.get("high_water", 0)), label)
            shard_served.add(int(shard.get("served", 0)), label)
            shard_alive.add(1 if shard.get("alive") else 0, label)
            shard_restarts.add(int(shard.get("restarts", 0)), label)
            cache_doc = shard.get("cache") or {}
            memory_doc = cache_doc.get("memory") or {}
            shard_cache_entries.add(int(memory_doc.get("entries", 0)), label)
            for tier in ("memory", "disk"):
                tier_doc = cache_doc.get(tier) or {}
                shard_cache_hits.add(
                    int(tier_doc.get("hits", 0)), dict(label, tier=tier)
                )
        families += [
            shard_depth, shard_high_water, shard_served, shard_alive,
            shard_restarts, shard_cache_entries, shard_cache_hits,
        ]

    if workers is not None:
        family = MetricFamily(
            "repro_workers", "gauge", "Analysis worker threads."
        )
        family.add(int(workers))
        families.append(family)
    if uptime_s is not None:
        family = MetricFamily(
            "repro_uptime_seconds", "gauge", "Daemon uptime."
        )
        family.add(float(uptime_s))
        families.append(family)

    return "\n".join(family.render() for family in families) + "\n"


# -- parsing (CI scrape validation) ------------------------------------------


class PrometheusParseError(ValueError):
    """The text does not follow the exposition format."""


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse an exposition document; returns {family: {type, samples}}.

    Strict about everything the format mandates: ``# TYPE`` before the
    family's samples, valid metric/label names, float-parseable values,
    histogram families carrying ``_bucket``/``_sum``/``_count`` series.
    Raises :class:`PrometheusParseError` on violation.
    """
    families: Dict[str, dict] = {}
    current: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise PrometheusParseError(f"line {lineno}: malformed HELP")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise PrometheusParseError(f"line {lineno}: malformed TYPE")
            _, _, name, kind = parts
            if not _NAME_RE.match(name):
                raise PrometheusParseError(
                    f"line {lineno}: invalid metric name {name!r}"
                )
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PrometheusParseError(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            if name in families:
                raise PrometheusParseError(
                    f"line {lineno}: duplicate TYPE for {name!r}"
                )
            families[name] = {"type": kind, "samples": []}
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise PrometheusParseError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            raise PrometheusParseError(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        if base != current:
            raise PrometheusParseError(
                f"line {lineno}: sample {name!r} outside its family block"
            )
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for part in raw_labels.split(","):
                label_match = _LABEL_RE.match(part.strip())
                if not label_match:
                    raise PrometheusParseError(
                        f"line {lineno}: malformed label {part!r}"
                    )
                labels[label_match.group("key")] = label_match.group("value")
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise PrometheusParseError(
                f"line {lineno}: unparseable value {value_text!r}"
            ) from None
        families[base]["samples"].append((name, labels, value))

    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series = {sample_name for sample_name, _, _ in family["samples"]}
        for suffix in ("_bucket", "_sum", "_count"):
            if family["samples"] and name + suffix not in series:
                raise PrometheusParseError(
                    f"histogram {name!r} is missing its {suffix} series"
                )
        for sample_name, labels, _ in family["samples"]:
            if sample_name == name + "_bucket" and "le" not in labels:
                raise PrometheusParseError(
                    f"histogram {name!r} has a bucket without an 'le' label"
                )
    return families
