"""Whole-pipeline optimisation round trips on real workloads.

Runs the full §6 battery -- constant folding, copy folding, certain
branch folding, dead code elimination -- over workload programs, and
asserts the transformed module still verifies and computes *exactly*
the same results under the interpreter.  This is the "VRP as an
optimizer" claim exercised end to end.
"""

import pytest

from repro.core import VRPPredictor
from repro.ir import prepare_module, verify_function
from repro.lang import compile_source
from repro.opt import (
    eliminate_dead_code,
    fold_certain_branches,
    fold_constants,
    fold_copies,
)
from repro.profiling import run_module
from repro.workloads import get_workload

# Workloads with modest runtimes (the pipeline reruns them twice).
WORKLOAD_NAMES = ["interp", "histogram", "calc", "sieve", "triangle", "scan"]


def optimise_module(module, prediction):
    """Apply every rewrite to every function; return total changes."""
    changes = 0
    for name, function in module.functions.items():
        function_prediction = prediction.functions[name]
        changes += fold_constants(function, function_prediction)
        changes += fold_copies(function, function_prediction)
        changes += fold_certain_branches(function, function_prediction)
        changes += eliminate_dead_code(function)
    return changes


@pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
def test_optimised_workload_is_equivalent(workload_name):
    workload = get_workload(workload_name)

    baseline_module = compile_source(workload.source, module_name=workload.name)
    prepare_module(baseline_module)
    baseline = run_module(
        baseline_module,
        args=workload.train_args,
        input_values=workload.train_inputs,
        max_steps=workload.max_steps,
    )

    module = compile_source(workload.source, module_name=workload.name)
    ssa_infos = prepare_module(module)
    prediction = VRPPredictor().predict_module(module, ssa_infos)
    optimise_module(module, prediction)

    for name, function in module.functions.items():
        verify_function(
            function, ssa=True, param_names=set(ssa_infos[name].param_names.values())
        )

    optimised = run_module(
        module,
        args=workload.train_args,
        input_values=workload.train_inputs,
        max_steps=workload.max_steps,
        check_assertions=False,  # folds may orphan assertion inputs
    )
    assert optimised.return_value == baseline.return_value

    # The optimised program must not be slower (fewer or equal steps).
    assert optimised.steps <= baseline.steps


def test_pipeline_actually_changes_something():
    workload = get_workload("sieve")
    module = compile_source(workload.source, module_name=workload.name)
    ssa_infos = prepare_module(module)
    prediction = VRPPredictor().predict_module(module, ssa_infos)
    changes = optimise_module(module, prediction)
    assert changes > 0


def test_optimised_program_shrinks_on_dead_heavy_code():
    source = """
    func main(n) {
      var mode = 2;
      var t = 0;
      for (i = 0; i < 50; i = i + 1) {
        if (mode == 1) {
          t = t + i * i * i;
          t = t % 1000;
        } else {
          t = t + 1;
        }
      }
      return t;
    }
    """
    module = compile_source(source)
    ssa_infos = prepare_module(module)
    size_before = module.instruction_count()
    prediction = VRPPredictor().predict_module(module, ssa_infos)
    optimise_module(module, prediction)
    assert module.instruction_count() < size_before
    result = run_module(module, args=[0], check_assertions=False)
    assert result.return_value == 50
