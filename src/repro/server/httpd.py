"""The HTTP face of the serving daemon.

Endpoints::

    GET  /healthz      liveness + queue depth (cheap, never queued)
    GET  /metricsz     metrics document: JSON schema by default,
                       Prometheus text when negotiated (see below)
    POST /v1/predict   one program  -> prediction table
    POST /v1/check     one program  -> diagnostics report
    POST /v1/ranges    one program  -> final range listing
    POST /v1/ir        one program  -> canonical SSA dump
    POST /v1/run       one program  -> interpret + profile
    POST /v1/analyze   one program  -> command named in the body
    POST /v1/batch     {"items": [...]} -> {"results": [...]}, micro-batched

Connection threads never analyse: they submit to the bounded
:class:`~repro.server.workers.WorkerPool` and wait, so ``--workers K``
bounds CPU concurrency no matter how many clients connect.  A full
queue answers ``503`` with ``Retry-After`` (backpressure), an oversized
body answers ``413``, malformed JSON or protocol violations answer
``400``; analysis-level failures (parse errors, timeouts) are ``200``
with ``status: "error"`` or ``degraded: true`` -- the request was
served, the *program* was the problem.

Every request emits ``server.request.begin``/``server.request.end``
events into the daemon's tracer and records a span, so ``/metricsz``
can surface span counts and per-endpoint latency histograms next to
the result-cache statistics.

Observability (all off the request's hot path):

* a request carrying ``X-Repro-Trace-Id`` keeps that id; otherwise the
  daemon mints one.  The id is echoed on the response header, stamped
  on the begin/end events, handed to the worker (so engine spans and
  the metrics ``tracing`` key correlate), and written to the access
  log -- one grep joins client, daemon, and engine views of a request;
* the access log is one structured JSON line per finished request
  (method, endpoint, status, cache tier, degraded flag, latency,
  trace id) on the ``repro.server.access`` logger -- silent unless
  :func:`repro.observability.logging.configure_json_logging` ran,
  which ``repro serve`` does;
* ``GET /metricsz`` content-negotiates: the JSON metrics-schema
  document by default, Prometheus text exposition when the client
  sends ``Accept: text/plain`` (or OpenMetrics) or appends
  ``?format=prometheus``.

Shutdown is a drain, not a kill: SIGTERM (or SIGINT) stops the accept
loop, lets queued and in-flight requests finish, flushes their
responses, then exits (connections are one-request HTTP/1.0, so no
idle keep-alive can hold the drain hostage).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.observability import context as tracecontext
from repro.observability.events import ServerRequestBegin, ServerRequestEnd
from repro.observability.logging import get_logger, log_event
from repro.observability.tracer import SpanRecord, Tracer
from repro.server.cache import ResultCache
from repro.server.protocol import ProtocolError, validate_batch
from repro.server.service import AnalysisService
from repro.server.stats import ServerStats
from repro.server.workers import PoolClosedError, QueueFullError, WorkerPool

#: POST route -> command pinned by the URL (None = body decides).
POST_ROUTES: Dict[str, Optional[str]] = {
    "/v1/predict": "predict",
    "/v1/check": "check",
    "/v1/ranges": "ranges",
    "/v1/ir": "ir",
    "/v1/run": "run",
    "/v1/analyze": None,
}

#: Spans kept for /metricsz aggregation; past this the daemon keeps
#: counting events but stops retaining span records.
MAX_RETAINED_SPANS = 100_000


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    # One request per connection: a drain never waits on an idle
    # keep-alive socket, and every response carries Content-Length.
    protocol_version = "HTTP/1.0"
    timeout = 30  # socket-level guard against wedged peers

    # The ReproServer that owns this handler's HTTP server.
    @property
    def ctx(self) -> "ReproServer":
        return self.server.repro  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.ctx.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- plumbing ------------------------------------------------------------

    def _adopt_trace_id(self) -> str:
        """The request's trace id: the caller's header when valid, else minted."""
        incoming = self.headers.get(tracecontext.TRACE_HEADER)
        if incoming and tracecontext.valid_trace_id(incoming):
            return incoming
        return tracecontext.new_trace_id()

    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header(tracecontext.TRACE_HEADER, trace_id)
        if status == 503:
            # Computed, not hardcoded: the wait quoted to a rejected
            # client is the time the current backlog needs to drain at
            # the observed service rate, clamped to [1s, 60s].
            ctx = self.ctx
            self.send_header(
                "Retry-After",
                str(ctx.stats.retry_after(ctx.pool.depth(), ctx.pool.workers)),
            )
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: dict) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._send_body(status, body, "application/json")

    def _finish(
        self,
        endpoint: str,
        command: Optional[str],
        status: int,
        document: dict,
        started: float,
        cached: Optional[str] = None,
        degraded: bool = False,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> None:
        if body is not None:
            self._send_body(status, body, content_type)
        else:
            self._send_json(status, document)
        elapsed_ms = (time.perf_counter() - started) * 1000
        ctx = self.ctx
        trace_id = getattr(self, "_trace_id", None)
        ctx.stats.record_request(
            endpoint, status, elapsed_ms, cached=cached, degraded=degraded
        )
        ctx.emit_event(
            ServerRequestEnd(
                endpoint=endpoint,
                command=command,
                status=status,
                elapsed_ms=round(elapsed_ms, 3),
                cached=cached,
                degraded=degraded,
                trace_id=trace_id,
            )
        )
        ctx.record_span(endpoint, started, time.perf_counter(), trace_id=trace_id)
        log_event(
            ctx.access_log,
            "request",
            method=self.command,
            endpoint=endpoint,
            status=status,
            cached=cached,
            degraded=degraded,
            elapsed_ms=round(elapsed_ms, 3),
            trace_id=trace_id,
        )

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        started = time.perf_counter()
        ctx = self.ctx
        self._trace_id = self._adopt_trace_id()
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            ctx.emit_event(
                ServerRequestBegin(
                    endpoint="/healthz", command=None, trace_id=self._trace_id
                )
            )
            self._finish(
                "/healthz",
                None,
                200,
                {
                    "status": "draining" if ctx.draining else "ok",
                    "inflight": ctx.pool.depth(),
                    "uptime_s": round(time.monotonic() - ctx.started_monotonic, 3),
                },
                started,
            )
            return
        if parsed.path == "/metricsz":
            ctx.emit_event(
                ServerRequestBegin(
                    endpoint="/metricsz", command=None, trace_id=self._trace_id
                )
            )
            if self._wants_prometheus(parsed.query):
                self._finish(
                    "/metricsz",
                    None,
                    200,
                    {},
                    started,
                    body=ctx.prometheus_document().encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
                return
            self._finish("/metricsz", None, 200, ctx.metrics_document(), started)
            return
        self._finish(
            self.path, None, 404, {"status": "error", "error": "not found"}, started
        )

    def _wants_prometheus(self, query: str) -> bool:
        formats = parse_qs(query).get("format")
        if formats:
            return formats[-1] == "prometheus"
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    # -- POST ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        started = time.perf_counter()
        ctx = self.ctx
        self._trace_id = self._adopt_trace_id()
        endpoint = self.path
        is_batch = endpoint == "/v1/batch"
        if not is_batch and endpoint not in POST_ROUTES:
            self._finish(
                endpoint, None, 404, {"status": "error", "error": "not found"}, started
            )
            return
        command = POST_ROUTES.get(endpoint)
        ctx.emit_event(
            ServerRequestBegin(
                endpoint=endpoint, command=command, trace_id=self._trace_id
            )
        )

        length = self.headers.get("Content-Length")
        if length is None or not length.isdigit():
            self._finish(
                endpoint,
                command,
                411,
                {"status": "error", "error": "Content-Length required"},
                started,
            )
            return
        length = int(length)
        if length > ctx.max_request_bytes:
            ctx.stats.record_rejected("too_large")
            self._finish(
                endpoint,
                command,
                413,
                {
                    "status": "error",
                    "error": (
                        f"request of {length} bytes exceeds the "
                        f"{ctx.max_request_bytes} byte limit"
                    ),
                },
                started,
            )
            return
        try:
            body = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._finish(
                endpoint,
                command,
                400,
                {"status": "error", "error": "body is not valid JSON"},
                started,
            )
            return

        try:
            if is_batch:
                items = validate_batch(body)
                results = ctx.service.execute_batch(
                    items, pool=ctx.pool, trace_id=self._trace_id
                )
                degraded = any(r.get("degraded") for r in results)
                self._finish(
                    endpoint,
                    None,
                    200,
                    {"status": "ok", "results": results},
                    started,
                    degraded=degraded,
                )
                return
            future = ctx.pool.submit(
                ctx.service.execute, body, command, self._trace_id
            )
            response = future.result()
            self._finish(
                endpoint,
                response.get("command", command),
                200,
                response,
                started,
                cached=response.get("cached"),
                degraded=bool(response.get("degraded")),
            )
        except QueueFullError as error:
            ctx.stats.record_rejected("queue_full")
            self._finish(
                endpoint, command, 503,
                {"status": "error", "error": str(error)}, started,
            )
        except PoolClosedError:
            ctx.stats.record_rejected("draining")
            self._finish(
                endpoint, command, 503,
                {"status": "error", "error": "server is draining"}, started,
            )
        except ProtocolError as error:
            self._finish(
                endpoint, command, 400,
                {"status": "error", "error": str(error)}, started,
            )
        except Exception as error:  # noqa: BLE001 -- the daemon must not die
            self._finish(
                endpoint, command, 500,
                {"status": "error", "error": f"internal error: {error}"}, started,
            )


class _HTTPServer(ThreadingHTTPServer):
    # Join handler threads on server_close(): a drain must not abandon
    # a response half-written.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True


class ReproServer:
    """The assembled daemon: pool + service + cache + stats + HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_size: int = 64,
        cache_dir: Optional[str] = None,
        memory_cache_entries: int = 1024,
        timeout_s: Optional[float] = None,
        max_request_bytes: int = 1 << 20,
        base_options: Optional[dict] = None,
        verbose: bool = False,
        incremental: bool = False,
    ):
        self.cache = ResultCache(
            memory_entries=memory_cache_entries, disk_dir=cache_dir
        )
        self.incremental_store = None
        if incremental:
            from repro.incremental import IncrementalStore

            # The summary store's disk tier lives beside (not inside)
            # the whole-file result cache: same durability story, no
            # key-space collision.
            self.incremental_store = IncrementalStore(
                disk_dir=(
                    os.path.join(cache_dir, "incremental") if cache_dir else None
                )
            )
        self.pool = WorkerPool(workers=workers, queue_size=queue_size)
        self.service = AnalysisService(
            cache=self.cache,
            timeout_s=timeout_s,
            base_options=base_options,
            incremental_store=self.incremental_store,
        )
        self.stats = ServerStats()
        self.tracer = Tracer(record_events=False)
        self.access_log = get_logger("server.access")
        self.max_request_bytes = max_request_bytes
        self.verbose = verbose
        self.draining = False
        self.started_monotonic = time.monotonic()
        self._tracer_lock = threading.Lock()
        self._serving = threading.Event()
        self.httpd = _HTTPServer((host, port), _Handler)
        self.httpd.repro = self  # type: ignore[attr-defined]

    # -- addresses -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    # -- observability plumbing (thread-safe wrappers) -----------------------

    def emit_event(self, event) -> None:
        with self._tracer_lock:
            self.tracer.emit(event)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        trace_id: Optional[str] = None,
    ) -> None:
        with self._tracer_lock:
            if len(self.tracer.spans) >= MAX_RETAINED_SPANS:
                return
            record = SpanRecord(
                name,
                start,
                depth=0,
                index=len(self.tracer.spans),
                parent=None,
                trace_id=trace_id,
            )
            record.end = end
            self.tracer.spans.append(record)

    def tracer_summary(self) -> dict:
        """Span/event totals, gathered under the tracer lock.

        ``/metricsz`` used to hand the live tracer to
        ``stats.snapshot``, which iterated ``event_counts`` while
        handler threads were still ``emit()``-ing into it -- a
        dictionary-changed-size race under load.  All reads happen here,
        inside ``_tracer_lock``, and only the copies leave.
        """
        with self._tracer_lock:
            return {
                "spans": len(self.tracer.spans),
                "event_counts": dict(sorted(self.tracer.event_counts.items())),
                "dropped_events": self.tracer.dropped_events,
            }

    def metrics_document(self) -> dict:
        """A full metrics-schema document for ``/metricsz``."""
        from repro.observability.metrics import MetricsReport

        with self._tracer_lock:
            phases = {
                name: {"count": timing.count, "seconds": timing.seconds}
                for name, timing in self.tracer.phase_timings().items()
            }
        server = self.stats.snapshot(
            cache_stats=self.cache.stats(),
            queue_depth=self.pool.depth(),
            queue_high_water=self.pool.high_water(),
            tracer_summary=self.tracer_summary(),
            incremental=(
                self.incremental_store.stats()
                if self.incremental_store is not None
                else None
            ),
        )
        report = MetricsReport(
            program="repro-serve",
            phases=phases,
            server=server,
            meta={
                "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
                "workers": self.pool.workers,
                "queue_size": self.pool.queue_size,
                "draining": self.draining,
            },
        )
        return report.to_dict()

    def prometheus_document(self) -> str:
        """The Prometheus text exposition for ``/metricsz``."""
        from repro.observability.prometheus import render_server_metrics

        server = self.stats.snapshot(
            cache_stats=self.cache.stats(),
            queue_depth=self.pool.depth(),
            queue_high_water=self.pool.high_water(),
            incremental=(
                self.incremental_store.stats()
                if self.incremental_store is not None
                else None
            ),
        )
        return render_server_metrics(
            server,
            uptime_s=round(time.monotonic() - self.started_monotonic, 3),
            workers=self.pool.workers,
        )

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        self._serving.set()
        self.httpd.serve_forever(poll_interval=0.05)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting, finish in-flight work, close all sockets.

        Order matters: the accept loop stops first (no new
        connections), then the pool drains (queued + running jobs
        finish and their handler threads write responses), then
        ``server_close`` joins the handler threads and closes the
        listening socket.  Returns True when everything finished inside
        ``timeout``.
        """
        self.draining = True
        if self._serving.is_set():
            # shutdown() blocks forever unless serve_forever ran.
            self.httpd.shutdown()
        finished = self.pool.shutdown(timeout=timeout)
        self.httpd.server_close()
        return finished


def serve_daemon(
    host: str = "127.0.0.1",
    port: int = 8077,
    workers: int = 4,
    queue_size: int = 64,
    cache_dir: Optional[str] = None,
    memory_cache_entries: int = 1024,
    timeout_s: Optional[float] = None,
    max_request_bytes: int = 1 << 20,
    drain_timeout_s: float = 30.0,
    base_options: Optional[dict] = None,
    verbose: bool = False,
    shards: Optional[int] = None,
    incremental: bool = False,
) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain and exit.

    This is the body of ``repro serve``.  The readiness line
    (``listening on HOST:PORT``) is printed only after the socket is
    bound, so supervisors and CI scripts can wait for it; with
    ``--port 0`` the kernel-assigned port is the one printed.

    ``shards`` picks the serving tier: ``None`` (the default) boots the
    sharded multi-process front end with one shard per CPU core, any
    positive N boots exactly N shards, and ``0`` keeps the original
    single-process threaded daemon (the GIL-bound fallback for
    environments where forking is unwelcome).  Every tier serves
    byte-identical responses; only throughput differs.

    The access log (one JSON line per request, stderr) is enabled here
    and only here: in-process embedders get a silent server unless they
    call :func:`repro.observability.logging.configure_json_logging`
    themselves.
    """
    import warnings

    from repro.observability.logging import configure_json_logging

    configure_json_logging()
    if shards is None:
        shards = os.cpu_count() or 1
    elif shards == 0:
        warnings.warn(
            "--shards 0 (the single-process threaded tier) is deprecated; "
            "use --shards 1 for a single shard process (see docs/SERVING.md)",
            DeprecationWarning,
            stacklevel=2,
        )
    if shards > 0:
        return _serve_sharded(
            host=host,
            port=port,
            shards=shards,
            queue_size=queue_size,
            cache_dir=cache_dir,
            memory_cache_entries=memory_cache_entries,
            timeout_s=timeout_s,
            max_request_bytes=max_request_bytes,
            drain_timeout_s=drain_timeout_s,
            base_options=base_options,
            verbose=verbose,
            incremental=incremental,
        )
    server = ReproServer(
        host=host,
        port=port,
        workers=workers,
        queue_size=queue_size,
        cache_dir=cache_dir,
        memory_cache_entries=memory_cache_entries,
        timeout_s=timeout_s,
        max_request_bytes=max_request_bytes,
        base_options=base_options,
        verbose=verbose,
        incremental=incremental,
    )
    print(
        f"repro serve: listening on {server.host}:{server.port} "
        f"(workers={workers}, queue={queue_size}, "
        f"cache={'disk+memory' if cache_dir else 'memory'}, "
        f"timeout={'none' if timeout_s is None else f'{timeout_s}s'})",
        flush=True,
    )

    stop = threading.Event()

    def _signal_handler(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _signal_handler)
    loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept", daemon=True
    )
    loop.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    inflight = server.pool.depth()
    print(f"repro serve: draining ({inflight} in flight)...", flush=True)
    finished = server.drain(timeout=drain_timeout_s)
    loop.join(timeout=5.0)
    snapshot = server.stats.snapshot()
    print(
        f"repro serve: drained; served "
        f"{sum(snapshot['responses'].values())} responses "
        f"({snapshot['degraded']} degraded)",
        flush=True,
    )
    return 0 if finished else 1


def _serve_sharded(
    host: str,
    port: int,
    shards: int,
    queue_size: int,
    cache_dir: Optional[str],
    memory_cache_entries: int,
    timeout_s: Optional[float],
    max_request_bytes: int,
    drain_timeout_s: float,
    base_options: Optional[dict],
    verbose: bool,
    incremental: bool = False,
) -> int:
    """The sharded-tier body of ``repro serve`` (``--shards >= 1``).

    Same operational contract as the legacy path: readiness line after
    bind, SIGTERM/SIGINT starts a drain that finishes in-flight work
    and collects every shard process, exit 0 only on a clean drain.
    """
    from repro.server.frontend import ShardedServer

    # Shards fork inside the constructor, before any thread starts.
    server = ShardedServer(
        host=host,
        port=port,
        shards=shards,
        queue_size=queue_size,
        cache_dir=cache_dir,
        memory_cache_entries=memory_cache_entries,
        timeout_s=timeout_s,
        max_request_bytes=max_request_bytes,
        base_options=base_options,
        verbose=verbose,
        incremental=incremental,
    )
    print(
        f"repro serve: listening on {server.host}:{server.port} "
        f"(shards={shards}, queue={queue_size}/shard, "
        f"cache={'disk+memory' if cache_dir else 'memory'}, "
        f"timeout={'none' if timeout_s is None else f'{timeout_s}s'})",
        flush=True,
    )

    stop = threading.Event()

    def _signal_handler(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _signal_handler)
    loop = threading.Thread(
        target=server.serve_forever, name="repro-serve-frontend", daemon=True
    )
    loop.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    inflight = server.inflight()
    print(f"repro serve: draining ({inflight} in flight)...", flush=True)
    finished = server.drain(timeout=drain_timeout_s)
    loop.join(timeout=5.0)
    snapshot = server.stats.snapshot()
    print(
        f"repro serve: drained; served "
        f"{sum(snapshot['responses'].values())} responses "
        f"({snapshot['degraded']} degraded)",
        flush=True,
    )
    return 0 if finished else 1
