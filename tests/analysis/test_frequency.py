"""Wu-Larus frequency propagation tests."""

import pytest

from repro.analysis.frequency import (
    edge_probabilities,
    function_frequencies,
    propagate_frequencies,
)
from repro.lang import compile_source

from tests.helpers import prepare_single


class TestEdgeProbabilities:
    def test_jump_gets_one(self):
        function, _ = prepare_single("func main(n) { var x = 1; return x; }")
        probabilities = edge_probabilities(function, {})
        assert all(p == 1.0 for p in probabilities.values())

    def test_branch_split(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        branch_label = next(
            label
            for label, block in function.blocks.items()
            if len(block.successors()) == 2
        )
        probabilities = edge_probabilities(function, {branch_label: 0.7})
        branch = function.block(branch_label).terminator
        assert probabilities[(branch_label, branch.true_target)] == pytest.approx(0.7)
        assert probabilities[(branch_label, branch.false_target)] == pytest.approx(0.3)


class TestBlockFrequencies:
    def test_straight_line_all_one(self):
        function, _ = prepare_single("func main(n) { var x = 1; return x; }")
        result = propagate_frequencies(function, {})
        for label in function.blocks:
            assert result.frequency(label) == pytest.approx(1.0)

    def test_if_arms_split(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } else { n = 2; } return n; }"
        )
        branch_label = next(
            label
            for label, block in function.blocks.items()
            if len(block.successors()) == 2
        )
        result = propagate_frequencies(function, {branch_label: 0.25})
        branch = function.block(branch_label).terminator
        assert result.frequency(branch.true_target) == pytest.approx(0.25)
        assert result.frequency(branch.false_target) == pytest.approx(0.75)

    def test_loop_geometric_closure(self):
        function, _ = prepare_single(
            "func main(n) { var t = 0; while (t < 9) { t = t + 1; } return t; }"
        )
        branch_label = next(
            label
            for label, block in function.blocks.items()
            if len(block.successors()) == 2
        )
        result = propagate_frequencies(function, {branch_label: 0.9})
        # Header executes 1 / (1 - 0.9) = 10 times.
        assert result.frequency(branch_label) == pytest.approx(10.0, rel=1e-3)

    def test_always_taken_loop_capped_not_crashed(self):
        function, _ = prepare_single(
            "func main(n) { while (1) { n = n + 1; } return n; }"
        )
        result = propagate_frequencies(function, {})
        assert all(f >= 0 for f in result.block_frequency.values())

    def test_matches_engine_frequencies(self):
        from tests.helpers import analyse

        source = """
        func main(n) {
          var t = 0;
          for (i = 0; i < 9; i = i + 1) {
            if (i > 4) { t = t + 2; } else { t = t + 1; }
          }
          return t;
        }
        """
        prediction = analyse(source)
        result = propagate_frequencies(
            prediction.function, prediction.branch_probability
        )
        for label, frequency in prediction.block_frequency.items():
            assert result.frequency(label) == pytest.approx(frequency, rel=0.02, abs=0.02)


class TestFunctionFrequencies:
    def test_call_weights_flow(self):
        module = compile_source(
            """
            func leaf() { return 1; }
            func mid() { return leaf() + leaf(); }
            func main(n) { return mid(); }
            """
        )
        frequencies = function_frequencies(
            module.functions, {name: {} for name in module.functions}
        )
        assert frequencies["main"] == pytest.approx(1.0)
        assert frequencies["mid"] == pytest.approx(1.0)
        assert frequencies["leaf"] == pytest.approx(2.0)

    def test_loop_multiplies_call_frequency(self):
        module = compile_source(
            """
            func leaf() { return 1; }
            func main(n) {
              var t = 0;
              for (i = 0; i < 9; i = i + 1) { t = t + leaf(); }
              return t;
            }
            """
        )
        branch_label = next(
            label
            for label, block in module.function("main").blocks.items()
            if len(block.successors()) == 2
        )
        frequencies = function_frequencies(
            module.functions, {"main": {branch_label: 0.9}, "leaf": {}}
        )
        assert frequencies["leaf"] == pytest.approx(9.0, rel=0.05)
