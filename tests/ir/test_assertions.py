"""Assertion (Pi) insertion tests."""

from repro.ir import prepare_for_analysis
from repro.ir.cfg import remove_unreachable_blocks, split_critical_edges
from repro.ir.assertions import insert_assertions
from repro.ir.instructions import Branch, Pi
from repro.lang import compile_source


def assertions_of(source: str, name: str = "main"):
    module = compile_source(source)
    function = module.function(name)
    remove_unreachable_blocks(function)
    split_critical_edges(function)
    count = insert_assertions(function)
    pis = [i for block in function.blocks.values() for i in block.pis()]
    return function, pis, count


class TestInsertion:
    def test_both_edges_get_assertions(self):
        function, pis, _ = assertions_of(
            "func main(n) { if (n < 10) { n = 1; } else { n = 2; } return n; }"
        )
        ops = sorted(pi.op for pi in pis if pi.src.name == "n")
        assert ops == ["ge", "lt"]  # true edge: n < 10; false edge: n >= 10

    def test_variable_variable_compare_asserts_both(self):
        function, pis, _ = assertions_of(
            "func main(a, b) { if (a < b) { a = 0; } return a + b; }"
        )
        asserted = sorted({pi.src.name for pi in pis})
        assert asserted == ["a", "b"]
        # b's assertion uses the swapped operator on the true edge.
        b_ops = {pi.op for pi in pis if pi.src.name == "b"}
        assert "gt" in b_ops or "le" in b_ops

    def test_constant_condition_gets_no_assertion(self):
        _, pis, count = assertions_of("func main(n) { while (1) { break; } return n; }")
        assert count == len(pis)

    def test_equality_assertions(self):
        _, pis, _ = assertions_of(
            "func main(n) { if (n == 5) { n = 0; } return n; }"
        )
        ops = sorted(pi.op for pi in pis)
        assert ops == ["eq", "ne"]

    def test_assertion_placed_at_block_top(self):
        function, pis, _ = assertions_of(
            "func main(n) { if (n > 0) { n = n + 1; } return n; }"
        )
        for pi in pis:
            block = pi.block
            body_instrs = [i for i in block.instructions if not isinstance(i, Pi)]
            first_pi_index = block.instructions.index(block.pis()[0])
            assert first_pi_index == 0

    def test_parent_tracks_source_after_ssa(self):
        module = compile_source(
            "func main(n) { if (n > 3) { n = n + 1; } return n; }"
        )
        function = module.function("main")
        prepare_for_analysis(function)
        pis = [i for block in function.blocks.values() for i in block.pis()]
        for pi in pis:
            assert pi.parent == pi.src.name  # rebound to the SSA version

    def test_loop_condition_asserted_on_both_edges(self):
        function, pis, _ = assertions_of(
            "func main(n) { var i = 0; while (i < n) { i = i + 1; } return i; }"
        )
        i_ops = sorted(pi.op for pi in pis if pi.src.name == "i")
        assert i_ops == ["ge", "lt"]

    def test_branch_on_plain_variable_asserts_nonzero(self):
        _, pis, _ = assertions_of(
            "func main(n) { if (n) { n = 1; } return n; }"
        )
        # Condition lowered to n != 0: true edge asserts ne, false eq.
        ops = sorted(pi.op for pi in pis if pi.src.name == "n")
        assert ops == ["eq", "ne"]
