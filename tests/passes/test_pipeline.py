"""PassPipeline semantics: ordering, invalidation, and round trips."""

from __future__ import annotations

import pytest

from repro.core import VRPPredictor
from repro.ir import prepare_module
from repro.ir.printer import format_module
from repro.lang import compile_source
from repro.opt import (
    eliminate_dead_code,
    fold_certain_branches,
    fold_constants,
    fold_copies,
)
from repro.passes import AnalysisCache, PassPipeline, run_pipeline
from repro.workloads import get_workload

from tests.helpers import PAPER_EXAMPLE, compile_and_prepare

OPTIMIZE_SEQUENCE = ["fold-constants", "fold-copies", "fold-branches", "dce"]

# A function with an obviously dead definition: plain dead code
# elimination (no folds required) must remove it.
DEAD_DEF = """
func main(n) {
  var unused = n * 3;
  var s = 0;
  for (i = 0; i < 5; i = i + 1) { s = s + 1; }
  return s;
}
"""


def _workload_module(name="sieve"):
    workload = get_workload(name)
    module = compile_source(workload.source, module_name=workload.name)
    infos = prepare_module(module)
    return module, infos


def reference_optimise(module, prediction):
    """The free-function sequence from tests/integration, verbatim."""
    changes = 0
    for name, function in module.functions.items():
        function_prediction = prediction.functions[name]
        changes += fold_constants(function, function_prediction)
        changes += fold_copies(function, function_prediction)
        changes += fold_certain_branches(function, function_prediction)
        changes += eliminate_dead_code(function)
    return changes


class TestOrderingDeterminism:
    def test_same_input_same_order_same_output(self):
        first_module, first_infos = _workload_module()
        second_module, second_infos = _workload_module()
        first = run_pipeline(first_module, first_infos, pipeline="optimize")
        second = run_pipeline(second_module, second_infos, pipeline="optimize")
        assert [run.name for run in first.runs] == OPTIMIZE_SEQUENCE
        assert [run.name for run in second.runs] == OPTIMIZE_SEQUENCE
        assert [run.changed for run in first.runs] == [
            run.changed for run in second.runs
        ]
        assert format_module(first_module) == format_module(second_module)

    def test_named_pipeline_matches_explicit_pass_list(self):
        named_module, named_infos = _workload_module()
        listed_module, listed_infos = _workload_module()
        named = run_pipeline(named_module, named_infos, pipeline="optimize")
        listed = run_pipeline(listed_module, listed_infos, passes=OPTIMIZE_SEQUENCE)
        assert [run.name for run in named.runs] == [run.name for run in listed.runs]
        assert format_module(named_module) == format_module(listed_module)


class TestPreservesInvalidation:
    def test_preserved_analysis_survives_a_mutating_pass(self):
        module, infos = compile_and_prepare(DEAD_DEF)
        cache = AnalysisCache(module, infos, enabled=True)
        function = module.main
        loops_before = cache.loops(function)
        prediction_before = cache.prediction()

        result = PassPipeline(["dce"]).run(module, cache=cache)

        run = result.run_of("dce")
        assert run is not None and run.changed > 0
        assert run.invalidated > 0
        # dce preserves the structural analyses: loop info must be served
        # from the cache (identity, not merely equality) ...
        assert cache.loops(function) is loops_before
        # ... while the prediction, outside its preserves set, is
        # recomputed on the next request.
        assert cache.prediction() is not prediction_before
        assert cache.invalidations["prediction"] == 1
        assert "loops" not in cache.invalidations

    def test_non_mutating_pass_invalidates_nothing(self):
        module, infos = compile_and_prepare(PAPER_EXAMPLE)
        cache = AnalysisCache(module, infos, enabled=True)
        prediction_before = cache.prediction()
        result = PassPipeline(["unreachable"]).run(module, cache=cache)
        assert result.run_of("unreachable").invalidated == 0
        assert cache.prediction() is prediction_before

    def test_no_change_no_invalidation(self):
        # A mutating pass that finds nothing to rewrite must not drop
        # the cache: invalidation is gated on an actual change.
        module, infos = compile_and_prepare(DEAD_DEF)
        cache = AnalysisCache(module, infos, enabled=True)
        PassPipeline(["dce"]).run(module, cache=cache)
        prediction = cache.prediction()
        second = PassPipeline(["dce"]).run(module, cache=cache)
        assert second.run_of("dce").changed == 0
        assert second.run_of("dce").invalidated == 0
        assert cache.prediction() is prediction


class TestRoundTrip:
    @pytest.mark.parametrize("workload_name", ["sieve", "calc"])
    def test_passes_match_the_free_functions(self, workload_name):
        ref_module, ref_infos = _workload_module(workload_name)
        prediction = VRPPredictor().predict_module(ref_module, ref_infos)
        ref_changes = reference_optimise(ref_module, prediction)

        pipe_module, pipe_infos = _workload_module(workload_name)
        result = run_pipeline(pipe_module, pipe_infos, passes=OPTIMIZE_SEQUENCE)

        assert result.changed == ref_changes
        assert format_module(pipe_module) == format_module(ref_module)

    def test_prediction_is_computed_once_across_the_fold_passes(self):
        module, infos = _workload_module()
        result = run_pipeline(module, infos, pipeline="optimize")
        # fold-constants misses, fold-copies and fold-branches hit: the
        # folds declare they preserve the prediction, so one module-wide
        # prediction feeds all three -- same contract as the reference
        # sequence's single upfront predict_module call.
        assert result.cache.misses["prediction"] == 1
        assert result.cache.hits["prediction"] >= 2
