"""MetricsReport: schema, JSON round-trips, and report assembly."""

import json

import pytest

from repro.observability import (
    MetricsReport,
    SCHEMA_KEYS,
    build_metrics_report,
    trace_analysis,
    validate_report_dict,
)

PROGRAM = """
func main(n) {
  var t = 0;
  for (i = 0; i < 10; i = i + 1) { t = t + i; }
  if (t > 1000) { t = 0; }
  return t;
}
"""


@pytest.fixture(scope="module")
def session():
    return trace_analysis(PROGRAM, module_name="roundtrip")


@pytest.fixture(scope="module")
def report(session):
    return session.metrics_report()


class TestSchema:
    def test_report_has_every_schema_key(self, report):
        data = report.to_dict()
        assert sorted(data) == sorted(SCHEMA_KEYS)
        assert validate_report_dict(data) is None

    def test_phases_cover_the_pipeline(self, report):
        for phase in ("lex", "parse", "lower", "ssa", "propagate", "predict"):
            assert phase in report.phases, phase
            assert report.phases[phase]["count"] >= 1
            assert report.phases[phase]["seconds"] >= 0.0

    def test_branch_records_carry_provenance(self, report):
        assert report.branches
        by_label = {record["label"]: record for record in report.branches}
        loop = by_label["for1"]
        assert loop["probability"] == pytest.approx(10 / 11)
        assert loop["source"] == "ranges"
        assert loop["cmp_op"] == "lt"
        assert loop["operands"][0][1] == "{ 1[0:10:1] }"

    def test_counters_and_meta_present(self, report):
        assert report.counters["expr_evaluations"] > 0
        assert report.meta["functions"] == 1
        assert report.meta["dropped_events"] == 0
        assert report.meta["event_counts"]["lattice.transition"] > 0


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, report):
        clone = MetricsReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()

    def test_write_and_read(self, report, tmp_path):
        path = tmp_path / "metrics.json"
        report.write(str(path))
        loaded = MetricsReport.read(str(path))
        assert loaded.to_dict() == report.to_dict()
        # The file itself is plain, valid JSON.
        assert validate_report_dict(json.loads(path.read_text())) is None

    def test_json_output_is_deterministic(self, report):
        assert report.to_json() == report.to_json()


class TestValidation:
    def test_missing_top_level_key_is_reported(self, report):
        data = report.to_dict()
        del data["phases"]
        assert "phases" in validate_report_dict(data)

    def test_bad_schema_version_is_reported(self, report):
        data = report.to_dict()
        data["schema_version"] = "one"
        assert "schema_version" in validate_report_dict(data)

    def test_incomplete_branch_record_is_reported(self, report):
        data = report.to_dict()
        data["branches"].append({"function": "main"})
        assert "label" in validate_report_dict(data)


class TestDegradedAssembly:
    def test_report_without_tracer_still_validates(self, session):
        report = build_metrics_report(session.prediction, tracer=None, program="bare")
        data = report.to_dict()
        assert validate_report_dict(data) is None
        assert data["phases"] == {}
        assert "event_counts" not in data["meta"]
        # Branch probabilities survive even without provenance events.
        by_label = {r["label"]: r for r in report.branches}
        assert by_label["for1"]["probability"] == pytest.approx(10 / 11)
        assert "cond" not in by_label["for1"]
