"""Accuracy metric tests."""

import pytest

from repro.evalharness.accuracy import (
    BranchError,
    area_under_cdf,
    average_cdfs,
    branch_errors,
    error_cdf,
    mean_error,
)
from repro.profiling.profile_data import BranchProfile


def make_profile(counts):
    profile = BranchProfile()
    for key, (taken, not_taken) in counts.items():
        profile.branch_counts[key] = [taken, not_taken]
    return profile


class TestBranchErrors:
    def test_errors_computed(self):
        truth = make_profile({("main", "b1"): (90, 10)})
        records = branch_errors({("main", "b1"): 0.8}, truth)
        assert len(records) == 1
        assert records[0].error_points == pytest.approx(10.0)
        assert records[0].weight == 100

    def test_unexecuted_branches_excluded(self):
        truth = make_profile({("main", "b1"): (0, 0)})
        assert branch_errors({("main", "b1"): 0.5}, truth) == []

    def test_missing_prediction_uses_default(self):
        truth = make_profile({("main", "b1"): (100, 0)})
        records = branch_errors({}, truth, default_prediction=0.5)
        assert records[0].error_points == pytest.approx(50.0)

    def test_perfect_prediction_zero_error(self):
        truth = make_profile({("main", "b1"): (3, 1)})
        records = branch_errors({("main", "b1"): 0.75}, truth)
        assert records[0].error_points == pytest.approx(0.0)


class TestCDF:
    def test_thresholds_strictly_less(self):
        records = [
            BranchError("m", "b", predicted=0.5, actual=0.49, weight=1),  # 1.0 pt
        ]
        cdf = error_cdf(records, thresholds=[1, 3])
        assert cdf == [0.0, 100.0]  # error of exactly 1.0 is NOT < 1

    def test_unweighted_counts_branches_equally(self):
        records = [
            BranchError("m", "a", 0.5, 0.5, weight=1000),  # 0 error
            BranchError("m", "b", 0.0, 1.0, weight=1),  # 100 error
        ]
        cdf = error_cdf(records, thresholds=[5], weighted=False)
        assert cdf == [50.0]

    def test_weighted_counts_executions(self):
        records = [
            BranchError("m", "a", 0.5, 0.5, weight=999),
            BranchError("m", "b", 0.0, 1.0, weight=1),
        ]
        cdf = error_cdf(records, thresholds=[5], weighted=True)
        assert cdf == [pytest.approx(99.9)]

    def test_empty_records(self):
        assert error_cdf([], thresholds=[1, 3]) == [0.0, 0.0]

    def test_monotone_nondecreasing(self):
        records = [
            BranchError("m", str(i), i / 100.0, 0.0, weight=1) for i in range(40)
        ]
        cdf = error_cdf(records)
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))


class TestAggregation:
    def test_average_cdfs(self):
        assert average_cdfs([[0.0, 100.0], [100.0, 100.0]]) == [50.0, 100.0]

    def test_average_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            average_cdfs([[1.0], [1.0, 2.0]])

    def test_area_under_cdf(self):
        assert area_under_cdf([0.0, 50.0, 100.0]) == pytest.approx(50.0)
        assert area_under_cdf([]) == 0.0

    def test_mean_error(self):
        records = [
            BranchError("m", "a", 0.5, 0.4, weight=1),  # 10 points
            BranchError("m", "b", 0.5, 0.2, weight=3),  # 30 points
        ]
        assert mean_error(records) == pytest.approx(20.0)
        assert mean_error(records, weighted=True) == pytest.approx(25.0)
