"""Shared fixtures for the diagnostics tests."""

from __future__ import annotations

import pathlib

import pytest

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture
def fixture_source():
    def load(name: str) -> str:
        return (FIXTURES / name).read_text()

    return load
