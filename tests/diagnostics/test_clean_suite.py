"""Clean-suite snapshot: zero findings on every seed workload.

The rules are deliberately conservative -- silent in dead code, silent
on heuristic probabilities, silent on widened over-approximations -- so
the 31 defect-free SPEC stand-ins must produce *no* findings.  Any
regression here means a rule started treating an approximation as a
proof.
"""

from __future__ import annotations

import pytest

from repro.diagnostics import check_source
from repro.workloads import all_workloads

WORKLOADS = all_workloads()


def test_seed_suite_size_is_stable():
    # The snapshot below covers every registered workload; if the
    # registry grows, the new programs are automatically swept in.
    assert len(WORKLOADS) == 31


@pytest.mark.parametrize(
    "workload", WORKLOADS, ids=[w.name for w in WORKLOADS]
)
def test_workload_is_clean(workload):
    report = check_source(workload.source, program=workload.name)
    problems = [
        f"{f.severity}: [{f.rule}] {f.message} ({f.function}/{f.block})"
        for f in report.findings
    ]
    assert problems == [], f"{workload.name} is not clean"
