"""Assertion refinement tests."""

import pytest

from repro.core.bounds import Bound, NEG_INF, POS_INF
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP
from repro.core.refine import refine_set


def single_extent(rangeset):
    assert rangeset.is_set and len(rangeset.ranges) == 1
    r = rangeset.ranges[0]
    return str(r.lo), str(r.hi), r.stride


class TestLatticeInputs:
    def test_top_stays_top(self):
        assert refine_set(TOP, "lt", Bound.number(10)) is TOP

    def test_bottom_becomes_predicate_range(self):
        result = refine_set(BOTTOM, "lt", Bound.number(10))
        assert single_extent(result) == ("-inf", "9", 1)

    def test_bottom_with_symbolic_bound(self):
        result = refine_set(BOTTOM, "ge", Bound.symbolic("n.0"))
        assert single_extent(result) == ("n.0", "+inf", 1)

    def test_bottom_eq_pins_value(self):
        result = refine_set(BOTTOM, "eq", Bound.number(5))
        assert result.constant_value() == 5

    def test_bottom_ne_stays_bottom(self):
        assert refine_set(BOTTOM, "ne", Bound.number(5)) is BOTTOM


class TestClipping:
    def test_paper_loop_assertion(self):
        # [0:10] refined by < 10 -> [0:9].
        result = refine_set(RangeSet.span(0, 10), "lt", Bound.number(10))
        assert single_extent(result) == ("0", "9", 1)

    def test_paper_branch_assertions(self):
        x = RangeSet.span(0, 9)
        assert single_extent(refine_set(x, "gt", Bound.number(7))) == ("8", "9", 1)
        assert single_extent(refine_set(x, "le", Bound.number(7))) == ("0", "7", 1)

    def test_no_overlap_is_contradiction(self):
        assert refine_set(RangeSet.span(0, 5), "gt", Bound.number(100)) is BOTTOM

    def test_entirely_satisfying_unchanged(self):
        x = RangeSet.span(0, 5)
        assert refine_set(x, "lt", Bound.number(100)).approx_equal(x)

    def test_stride_phase_preserved_on_lower_clip(self):
        # {0,4,8,12} refined by > 2 must start at 4, not 3.
        x = RangeSet.span(0, 12, 4)
        result = refine_set(x, "gt", Bound.number(2))
        assert single_extent(result) == ("4", "12", 4)

    def test_stride_phase_preserved_on_upper_clip(self):
        # {1,4,7,10} refined by < 9 keeps {1,4,7}.
        x = RangeSet.span(1, 10, 3)
        result = refine_set(x, "lt", Bound.number(9))
        assert single_extent(result) == ("1", "7", 3)

    def test_probability_mass_renormalised(self):
        x = RangeSet.from_ranges(
            [StridedRange.span(0.5, 0, 9, 1), StridedRange.span(0.5, 100, 109, 1)]
        )
        result = refine_set(x, "lt", Bound.number(50))
        # Only the low half survives, renormalised to probability 1.
        assert single_extent(result) == ("0", "9", 1)
        assert result.ranges[0].probability == pytest.approx(1.0)

    def test_partial_clip_weights_by_kept_fraction(self):
        x = RangeSet.from_ranges(
            [StridedRange.span(0.5, 0, 9, 1), StridedRange.single(0.5, 3)]
        )
        result = refine_set(x, "lt", Bound.number(5))
        # First range keeps 5/10 of its mass, singleton keeps all:
        # weights 0.25 : 0.5, renormalised to 1/3 : 2/3.
        by_extent = {
            (str(r.lo), str(r.hi)): r.probability for r in result.ranges
        }
        assert by_extent[("0", "4")] == pytest.approx(1 / 3)
        assert by_extent[("3", "3")] == pytest.approx(2 / 3)


class TestEquality:
    def test_eq_pins_to_singleton(self):
        result = refine_set(RangeSet.span(0, 9), "eq", Bound.number(4))
        assert result.constant_value() == 4

    def test_eq_outside_range_contradiction(self):
        assert refine_set(RangeSet.span(0, 9), "eq", Bound.number(50)) is BOTTOM

    def test_eq_off_phase_contradiction(self):
        # 5 is not in {0, 2, 4, ...}.
        assert refine_set(RangeSet.span(0, 10, 2), "eq", Bound.number(5)) is BOTTOM

    def test_eq_symbolic_bound(self):
        result = refine_set(RangeSet.span(0, 9), "eq", Bound.symbolic("y.0"))
        assert result.copy_symbol() == "y.0"

    def test_ne_removes_endpoint(self):
        result = refine_set(RangeSet.span(0, 9), "ne", Bound.number(9))
        assert single_extent(result) == ("0", "8", 1)

    def test_ne_removes_lower_endpoint(self):
        result = refine_set(RangeSet.span(0, 9), "ne", Bound.number(0))
        assert single_extent(result) == ("1", "9", 1)

    def test_ne_interior_hole_keeps_range(self):
        result = refine_set(RangeSet.span(0, 9), "ne", Bound.number(5))
        assert single_extent(result) == ("0", "9", 1)

    def test_ne_on_singleton_contradiction(self):
        assert refine_set(RangeSet.constant(5), "ne", Bound.number(5)) is BOTTOM


class TestSymbolicInteraction:
    def test_incomparable_basis_left_unchanged(self):
        x = RangeSet.span(0, 9)
        result = refine_set(x, "lt", Bound.symbolic("n.0"))
        assert result.approx_equal(x)

    def test_same_symbol_offsets_clip(self):
        x = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.symbolic("n", 0), Bound.symbolic("n", 9), 1)]
        )
        result = refine_set(x, "lt", Bound.symbolic("n", 5))
        assert single_extent(result) == ("n", "n+4", 1)

    def test_half_open_clip(self):
        x = RangeSet.from_ranges(
            [StridedRange(1.0, Bound.number(NEG_INF), Bound.number(POS_INF), 1)]
        )
        result = refine_set(x, "ge", Bound.number(0))
        assert single_extent(result) == ("0", "+inf", 1)
