"""Figure 5: expression evaluations versus program size.

The paper plots the number of expression evaluations against instruction
count over a 50-program collection and observes linear behaviour.  We
measure over the 20-workload suite plus a size-scaled synthetic family
and assert near-linearity.
"""

from benchmarks.conftest import emit
from repro.evalharness import (
    format_scatter,
    linearity_ratio,
    measure_scaling,
    measure_workloads,
)


def test_figure5_expression_evaluations(benchmark, results_dir):
    scaled = benchmark.pedantic(
        lambda: measure_scaling([2, 4, 8, 16, 32, 64]), rounds=1, iterations=1
    )
    workload_counts = measure_workloads()

    points = [(instructions, evaluations) for instructions, evaluations, _ in scaled]
    lines = ["Figure 5 reproduction: expression evaluations vs instructions", ""]
    lines.append("Synthetic size-scaled family:")
    lines.append(format_scatter(points, "instructions", "evaluations"))
    lines.append("")
    lines.append("Workload suite:")
    lines.append(f"{'workload':>12s}  {'instructions':>12s}  {'evaluations':>12s}")
    for name, instructions, evaluations, _ in workload_counts:
        lines.append(f"{name:>12s}  {instructions:>12d}  {evaluations:>12d}")
    emit(results_dir, "fig5_evaluations.txt", "\n".join(lines))

    # The paper's claim: linear in practice.
    ratio = linearity_ratio(points)
    assert ratio < 3.0, f"superlinear evaluation growth: ratio {ratio:.2f}"
