"""Heuristic static branch predictors: the paper's baselines.

* :class:`Rule9050Predictor` -- the "90/50 rule".
* :class:`BallLarusPredictor` -- the nine Ball–Larus heuristics with
  Wu–Larus Dempster–Shafer combination (the paper's strongest heuristic
  baseline, and the fallback VRP uses on ⊥ branches).
* :class:`RandomPredictor` -- the random reference line.
"""

from repro.heuristics.ball_larus import (
    BallLarusPredictor,
    HEURISTIC_ORDER,
    call_heuristic,
    guard_heuristic,
    loop_branch_heuristic,
    loop_exit_heuristic,
    loop_header_heuristic,
    opcode_heuristic,
    pointer_heuristic,
    return_heuristic,
    store_heuristic,
)
from repro.heuristics.base import FunctionContext, Predictor
from repro.heuristics.combine import dempster_shafer
from repro.heuristics.random_pred import RandomPredictor
from repro.heuristics.rule9050 import Rule9050Predictor

__all__ = [
    "BallLarusPredictor",
    "FunctionContext",
    "HEURISTIC_ORDER",
    "Predictor",
    "RandomPredictor",
    "Rule9050Predictor",
    "call_heuristic",
    "dempster_shafer",
    "guard_heuristic",
    "loop_branch_heuristic",
    "loop_exit_heuristic",
    "loop_header_heuristic",
    "opcode_heuristic",
    "pointer_heuristic",
    "return_heuristic",
    "store_heuristic",
]
