"""Figure 8: prediction accuracy on the SPECfp-like suite.

The paper's headline figure: on numeric code, VRP is substantially more
accurate than the heuristic approaches and much closer to execution
profiling, and symbolic ranges add accuracy over numeric-only ranges.
"""

from benchmarks.conftest import emit
from repro.evalharness import (
    SuiteEvaluation,
    area_under_cdf,
    evaluate_workload,
    format_suite_figure,
)


def evaluate(prepared_workloads):
    return SuiteEvaluation(
        suite_name="SPECfp-like",
        evaluations=[
            evaluate_workload(p.workload, prepared=p) for p in prepared_workloads
        ],
    )


def test_figure8_specfp(benchmark, results_dir, prepared_fp_suite):
    evaluation = benchmark.pedantic(
        lambda: evaluate(prepared_fp_suite), rounds=1, iterations=1
    )
    unweighted = format_suite_figure(
        evaluation, weighted=False, title="Figure 8a: SPECfp-like, unweighted"
    )
    weighted = format_suite_figure(
        evaluation, weighted=True, title="Figure 8b: SPECfp-like, weighted"
    )
    emit(results_dir, "fig8_specfp.txt", unweighted + "\n\n" + weighted)

    for is_weighted in (False, True):
        auc = {
            name: area_under_cdf(evaluation.aggregate_cdf(name, weighted=is_weighted))
            for name in evaluation.predictors()
        }
        # The paper's orderings on numeric code.
        assert auc["profile"] > auc["vrp"], auc
        assert auc["vrp"] > auc["ball-larus"], auc  # the headline result
        assert auc["vrp"] >= auc["vrp-numeric"], auc  # symbolic ranges help
        assert auc["ball-larus"] > auc["rule-90-50"], auc
        assert auc["vrp"] > auc["random"], auc
        # VRP is much closer to profiling than the heuristics are
        # ("significantly more accurate for numeric code").
        assert auc["profile"] - auc["vrp"] < auc["profile"] - auc["ball-larus"]
