"""Shared fixtures for the figure-reproduction benchmarks.

Workload preparation (compile + train run + ref run) is expensive and
shared by several figures, so it is done once per session.  Every
benchmark writes its rendered table to ``benchmarks/results/`` and
prints it, so the regenerated figures survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.evalharness import prepare_workload
from repro.workloads import suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def prepared_int_suite():
    return [prepare_workload(w) for w in suite("int")]


@pytest.fixture(scope="session")
def prepared_fp_suite():
    return [prepare_workload(w) for w in suite("fp")]


@pytest.fixture(scope="session")
def prepared_inter_suite():
    return [prepare_workload(w) for w in suite("inter")]


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")


def emit_metrics(results_dir: pathlib.Path, name: str, report) -> pathlib.Path:
    """Persist a MetricsReport as a ``BENCH_<name>.json`` result file.

    The machine-readable companion of :func:`emit`: the rendered table
    stays the human artefact, the report carries the same run for tools
    (schema in ``docs/OBSERVABILITY.md``).
    """
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(report.to_json() + "\n")
    return path
