"""AnalysisCache: demand computation, reuse, and invalidation."""

from __future__ import annotations

from repro.passes import AnalysisCache
from repro.passes.cache import dominator_tree, loop_info, postdominator_tree

from tests.helpers import PAPER_EXAMPLE, compile_and_prepare

LOOPY = """
func helper(k) {
  var s = 0;
  for (i = 0; i < k; i = i + 1) { s = s + i; }
  return s;
}
func main(n) {
  var total = 0;
  for (j = 0; j < 10; j = j + 1) { total = total + helper(j); }
  return total;
}
"""


def _cache(source=PAPER_EXAMPLE, **kwargs):
    module, infos = compile_and_prepare(source)
    kwargs.setdefault("enabled", True)
    return module, AnalysisCache(module, infos, **kwargs)


class TestDemandComputation:
    def test_structural_analyses_are_served_from_cache(self):
        module, cache = _cache()
        function = module.main
        assert cache.cfg(function) is cache.cfg(function)
        assert cache.dominators(function) is cache.dominators(function)
        assert cache.postdominators(function) is cache.postdominators(function)
        assert cache.loops(function) is cache.loops(function)
        assert cache.context(function) is cache.context(function)

    def test_context_is_built_over_the_cached_analyses(self):
        module, cache = _cache()
        function = module.main
        context = cache.context(function)
        assert context.cfg is cache.cfg(function)
        assert context.loops is cache.loops(function)
        assert context.postdom is cache.postdominators(function)

    def test_prediction_is_module_scoped_and_cached(self):
        module, cache = _cache(LOOPY)
        prediction = cache.prediction()
        assert prediction is cache.prediction()
        assert set(prediction.functions) == {"main", "helper"}
        assert cache.function_prediction(module.main) is prediction.functions["main"]

    def test_frequency_follows_the_prediction(self):
        module, cache = _cache(LOOPY)
        frequency = cache.frequency(module.main)
        assert frequency is cache.frequency(module.main)
        entry = module.main.entry_label
        assert frequency.block_frequency[entry] == 1.0

    def test_hit_and_miss_counters(self):
        module, cache = _cache()
        function = module.main
        cache.loops(function)
        cache.loops(function)
        assert cache.misses["loops"] == 1
        assert cache.hits["loops"] == 1

    def test_unknown_analysis_is_rejected(self):
        module, cache = _cache()
        try:
            cache.get("no-such-analysis")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_disabled_cache_recomputes_structural_analyses(self):
        module, cache = _cache(enabled=False)
        function = module.main
        assert cache.cfg(function) is not cache.cfg(function)
        # ...but semantic analyses stay cached: reuse across passes is a
        # correctness contract, not a performance knob.
        assert cache.prediction() is cache.prediction()


class TestInvalidation:
    def test_preserved_analysis_survives_clobbered_one_is_recomputed(self):
        module, cache = _cache()
        function = module.main
        loops_before = cache.loops(function)
        prediction_before = cache.prediction()
        # A pass declaring it preserves loop info but not the prediction.
        cache.invalidate(preserves=frozenset(("cfg", "loops")))
        assert cache.loops(function) is loops_before  # served from cache
        assert cache.prediction() is not prediction_before  # recomputed
        assert cache.invalidations["prediction"] == 1
        assert "loops" not in cache.invalidations

    def test_invalidate_all_drops_everything(self):
        module, cache = _cache()
        function = module.main
        cfg_before = cache.cfg(function)
        cache.prediction()
        dropped = cache.invalidate_all()
        assert dropped >= 2
        assert cache.cfg(function) is not cfg_before

    def test_function_scoped_invalidation_spares_other_functions(self):
        module, cache = _cache(LOOPY)
        main_cfg = cache.cfg(module.main)
        helper_cfg = cache.cfg(module.function("helper"))
        cache.invalidate(preserves=frozenset(), functions={"main"})
        assert cache.cfg(module.main) is not main_cfg
        assert cache.cfg(module.function("helper")) is helper_cfg

    def test_stats_reports_all_traffic(self):
        module, cache = _cache()
        cache.loops(module.main)
        cache.loops(module.main)
        cache.invalidate(preserves=frozenset())
        stats = cache.stats()
        assert stats["loops"] == {"hits": 1, "misses": 1, "invalidations": 1}


class TestConstructionSiteHelpers:
    def test_helpers_memoise_on_the_cfg_snapshot(self):
        from repro.core.perf import context as perf_context
        from repro.ir.cfg import CFG

        module, _ = compile_and_prepare(PAPER_EXAMPLE)
        cfg = CFG(module.main)
        with perf_context.activate(True):
            assert dominator_tree(cfg) is dominator_tree(cfg)
            assert postdominator_tree(cfg) is postdominator_tree(cfg)
            assert loop_info(cfg) is loop_info(cfg)
        with perf_context.activate(False):
            fresh = CFG(module.main)
            assert dominator_tree(fresh) is not dominator_tree(fresh)

    def test_helper_trees_match_direct_construction(self):
        from repro.ir.cfg import CFG
        from repro.ir.dominance import DominatorTree

        module, _ = compile_and_prepare(PAPER_EXAMPLE)
        cfg = CFG(module.main)
        direct = DominatorTree(cfg)
        shared = dominator_tree(cfg)
        assert direct.idom == shared.idom
        assert direct.children == shared.children
