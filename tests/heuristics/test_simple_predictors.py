"""90/50 rule, random predictor, and Dempster-Shafer combination tests."""

import pytest

from repro.heuristics.combine import dempster_shafer
from repro.heuristics.random_pred import RandomPredictor
from repro.heuristics.rule9050 import Rule9050Predictor

from tests.helpers import prepare_single


class TestRule9050:
    def test_forward_branch_gets_half(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        (probability,) = Rule9050Predictor().predict_function(function).values()
        assert probability == pytest.approx(0.5)

    def test_do_while_latch_gets_ninety(self):
        function, _ = prepare_single(
            "func main(n) { var t = 0; do { t = t + 1; } while (t < 10); return t; }"
        )
        (probability,) = Rule9050Predictor().predict_function(function).values()
        assert probability == pytest.approx(0.9)

    def test_while_header_is_forward(self):
        # Rotated loops put the conditional at the top: both edges are
        # forward, so the rule says 50% -- the paper's "50 part" weakness.
        function, _ = prepare_single(
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        (probability,) = Rule9050Predictor().predict_function(function).values()
        assert probability == pytest.approx(0.5)

    def test_custom_backward_probability(self):
        function, _ = prepare_single(
            "func main(n) { var t = 0; do { t = t + 1; } while (t < 10); return t; }"
        )
        predictor = Rule9050Predictor(backward_probability=0.95)
        (probability,) = predictor.predict_function(function).values()
        assert probability == pytest.approx(0.95)


class TestRandomPredictor:
    def test_deterministic_per_seed(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        a = RandomPredictor(seed=1).predict_function(function)
        b = RandomPredictor(seed=1).predict_function(function)
        assert a == b

    def test_different_seeds_differ(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        a = RandomPredictor(seed=1).predict_function(function)
        b = RandomPredictor(seed=2).predict_function(function)
        assert a != b

    def test_values_in_unit_interval(self):
        function, _ = prepare_single(
            """
            func main(n) {
              if (n > 0) { n = 1; }
              if (n > 1) { n = 2; }
              if (n > 2) { n = 3; }
              return n;
            }
            """
        )
        for probability in RandomPredictor().predict_function(function).values():
            assert 0.0 <= probability <= 1.0


class TestDempsterShafer:
    def test_neutral_element(self):
        assert dempster_shafer([]) == pytest.approx(0.5)
        assert dempster_shafer([0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_agreeing_evidence_strengthens(self):
        assert dempster_shafer([0.8, 0.8]) > 0.8

    def test_exact_two_source_formula(self):
        p = dempster_shafer([0.8, 0.7])
        expected = (0.8 * 0.7) / (0.8 * 0.7 + 0.2 * 0.3)
        assert p == pytest.approx(expected)

    def test_complementary_evidence_cancels(self):
        assert dempster_shafer([0.8, 0.2]) == pytest.approx(0.5)

    def test_order_independent(self):
        values = [0.9, 0.3, 0.6, 0.75]
        assert dempster_shafer(values) == pytest.approx(
            dempster_shafer(list(reversed(values)))
        )

    def test_extremes_clamped_not_crashed(self):
        assert 0.0 < dempster_shafer([1.0, 0.9]) <= 1.0
        assert 0.0 <= dempster_shafer([0.0, 0.1]) < 1.0


class TestFallbackAdapter:
    def test_as_fallback_caches_per_function(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        predictor = Rule9050Predictor()
        fallback = predictor.as_fallback()
        (label,) = predictor.predict_function(function)
        assert fallback(function, label) == pytest.approx(0.5)
        assert fallback(function, "no_such_label") == pytest.approx(0.5)
