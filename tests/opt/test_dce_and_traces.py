"""Dead code elimination, branch folding, and trace formation tests."""

import pytest

from repro.core.propagation import analyse_function
from repro.ir import verify_function
from repro.ir.function import Module
from repro.ir.instructions import Branch, Jump
from repro.opt import (
    dynamic_trace_coverage,
    eliminate_dead_code,
    fold_certain_branches,
    form_traces,
    fold_constants,
    trace_statistics,
)
from repro.profiling import run_module

from tests.helpers import analyse, prepare_single


def run_main(function, args):
    module = Module("m")
    module.add_function(function)
    return run_module(module, args=args).return_value


class TestDeadCodeElimination:
    def test_unused_computation_removed(self):
        function, _ = prepare_single(
            "func main(n) { var waste = n * 99 + 7; return n; }"
        )
        removed = eliminate_dead_code(function)
        assert removed >= 2  # the mul and the add at least
        verify_function(function)
        assert run_main(function, [21]) == 21

    def test_side_effects_preserved(self):
        function, _ = prepare_single(
            """
            func main(n) {
              array a[4];
              a[0] = n;
              var unused = a[0] + 1;
              return a[0];
            }
            """
        )
        eliminate_dead_code(function)
        assert run_main(function, [9]) == 9  # the store stayed

    def test_live_chain_untouched(self):
        function, _ = prepare_single(
            "func main(n) { var a = n + 1; var b = a * 2; return b; }"
        )
        removed = eliminate_dead_code(function)
        assert removed == 0
        assert run_main(function, [5]) == 12

    def test_after_constant_folding(self):
        # The paper's end-to-end optimisation: fold constants, then sweep.
        source = "func main(n) { var a = 6; var b = a * 7; return b; }"
        prediction = analyse(source)
        function = prediction.function
        fold_constants(function, prediction)
        removed = eliminate_dead_code(function)
        assert removed >= 1
        verify_function(function)
        assert run_main(function, [0]) == 42


class TestBranchFolding:
    def test_certain_branch_folds_to_jump(self):
        source = """
        func main(n) {
          var x = 5;
          if (x > 10) { n = n + 999; }
          return n;
        }
        """
        prediction = analyse(source)
        function = prediction.function
        folded = fold_certain_branches(function, prediction)
        assert folded == 1
        assert all(
            not isinstance(block.terminator, Branch)
            for block in function.blocks.values()
        )
        verify_function(function)
        assert run_main(function, [3]) == 3

    def test_heuristic_certainty_not_folded(self):
        source = "func main(n) { if (n > 0) { n = 1; } return n; }"
        function, info = prepare_single(source)
        prediction = analyse_function(
            function, info, heuristic=lambda f, label: 1.0
        )
        assert fold_certain_branches(function, prediction) == 0

    def test_folding_keeps_loops_intact(self):
        source = """
        func main(n) {
          var debug = 0;
          var t = 0;
          for (i = 0; i < 8; i = i + 1) {
            if (debug == 1) { t = t + 100; }
            t = t + 1;
          }
          return t;
        }
        """
        prediction = analyse(source)
        function = prediction.function
        folded = fold_certain_branches(function, prediction)
        assert folded >= 1
        verify_function(function)
        assert run_main(function, [0]) == 8


class TestTraces:
    def test_hot_path_forms_one_trace(self):
        source = """
        func main(n) {
          var hot = 0;
          for (i = 0; i < 100; i = i + 1) {
            var v = input() % 100;
            if (v < 97) { hot = hot + 1; } else { hot = hot - 1; }
          }
          return hot;
        }
        """
        prediction = analyse(source)
        traces = form_traces(prediction.function, prediction)
        # Every block belongs to exactly one trace.
        claimed = [label for trace in traces for label in trace.blocks]
        assert len(claimed) == len(set(claimed))
        hottest = traces[0]
        assert hottest.length >= 3  # the loop body chains through the hot arm
        assert hottest.probability >= 0.5

    def test_statistics(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 9; i = i + 1) { t = t + 1; } return t; }"
        )
        traces = form_traces(prediction.function, prediction)
        stats = trace_statistics(traces)
        assert stats["count"] >= 1
        assert stats["longest"] >= stats["mean_length"]

    def test_dynamic_coverage_measured(self):
        source = """
        func main(n) {
          var hot = 0;
          for (i = 0; i < 200; i = i + 1) {
            var v = input() % 10;
            if (v < 9) { hot = hot + 1; } else { hot = hot - 1; }
          }
          return hot;
        }
        """
        from tests.helpers import compile_and_prepare

        module, _ = compile_and_prepare(source)
        function = module.function("main")
        from repro.ir.ssa import SSAInfo

        info = SSAInfo()
        info.param_names = {"n": "n.0"}
        prediction = analyse_function(function, info)
        traces = form_traces(function, prediction)
        run = run_module(module, args=[0], input_values=[i % 10 for i in range(200)])
        dynamic = {
            (src, dst): count
            for (fn, src, dst), count in run.edge_counts.items()
            if fn == "main"
        }
        coverage = dynamic_trace_coverage(traces, dynamic)
        assert 0.0 < coverage <= 1.0
        # The hot arm dominates: most transfers stay inside traces.
        assert coverage > 0.5

    def test_empty_statistics(self):
        assert trace_statistics([]) == {
            "count": 0,
            "mean_length": 0.0,
            "weighted_length": 0.0,
        }
