"""Propagation engine behaviour tests."""

import pytest

from repro.core import VRPConfig
from repro.core.propagation import analyse_function
from repro.core.rangeset import RangeSet

from tests.helpers import analyse, prepare_single


class TestStraightLine:
    def test_constant_chain(self):
        prediction = analyse(
            "func main(n) { var a = 2; var b = a * 3; var c = b + 4; return c; }"
        )
        assert prediction.values["c.0"].constant_value() == 10

    def test_parameter_is_bottom_by_default(self):
        prediction = analyse("func main(n) { var x = n; return x; }")
        assert prediction.values["x.0"].is_bottom

    def test_parameter_range_respected(self):
        prediction = analyse(
            "func main(n) { var x = n + 1; return x; }",
            param_ranges={"n": RangeSet.span(0, 9)},
        )
        hull = prediction.values["x.0"].hull()
        assert (hull.lo.offset, hull.hi.offset) == (1, 10)

    def test_input_is_bottom(self):
        prediction = analyse("func main(n) { var x = input(); return x; }")
        assert prediction.values["x.0"].is_bottom

    def test_load_is_bottom(self):
        prediction = analyse(
            "func main(n) { array a[4]; a[0] = 1; var x = a[0]; return x; }"
        )
        assert prediction.values["x.0"].is_bottom

    def test_return_set_collected(self):
        prediction = analyse("func main(n) { return 42; }")
        assert prediction.return_set.constant_value() == 42


class TestBranches:
    def test_certain_branch_is_one_sided(self):
        prediction = analyse(
            "func main(n) { var x = 5; if (x < 10) { n = 1; } return n; }"
        )
        (probability,) = prediction.branch_probability.values()
        assert probability == pytest.approx(1.0)

    def test_dead_edge_frequency_zero(self):
        prediction = analyse(
            "func main(n) { var x = 5; if (x > 10) { n = 1; } return n; }"
        )
        (label,) = prediction.branch_probability
        branch = prediction.function.block(label).terminator
        assert prediction.edge_frequency[(label, branch.true_target)] == 0.0

    def test_heuristic_fallback_on_bottom(self):
        seen = []

        def heuristic(function, label):
            seen.append(label)
            return 0.73

        function, info = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        prediction = analyse_function(function, info, heuristic=heuristic)
        assert seen  # fallback consulted
        (probability,) = prediction.branch_probability.values()
        assert probability == pytest.approx(0.73)
        assert prediction.used_heuristic

    def test_default_probability_without_heuristic(self):
        prediction = analyse("func main(n) { if (n > 0) { n = 1; } return n; }")
        (probability,) = prediction.branch_probability.values()
        assert probability == pytest.approx(0.5)

    def test_probability_of_edge_helper(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 4; i = i + 1) { t = t + 1; } return t; }"
        )
        (label,) = prediction.branch_probability
        branch = prediction.function.block(label).terminator
        p_true = prediction.probability_of_edge(label, branch.true_target)
        p_false = prediction.probability_of_edge(label, branch.false_target)
        # Edge frequencies converge within the engine tolerance.
        assert p_true + p_false == pytest.approx(1.0, abs=0.01)
        assert p_true == pytest.approx(4 / 5, abs=0.01)


class TestFrequencies:
    def test_entry_frequency_is_one(self):
        prediction = analyse("func main(n) { return n; }")
        entry = prediction.function.entry_label
        assert prediction.block_frequency[entry] == pytest.approx(1.0)

    def test_loop_frequency_geometric(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 9; i = i + 1) { t = t + 1; } return t; }"
        )
        # P(stay) = 9/10 -> header frequency 1/(1-0.9) = 10.
        (label,) = prediction.branch_probability
        assert prediction.block_frequency[label] == pytest.approx(10.0, rel=0.05)

    def test_if_splits_frequency(self):
        prediction = analyse(
            """
            func main(n) {
              var x = 3;
              if (x < 10) { n = n + 1; } else { n = n - 1; }
              return n;
            }
            """
        )
        (label,) = prediction.branch_probability
        branch = prediction.function.block(label).terminator
        assert prediction.edge_frequency[(label, branch.true_target)] == pytest.approx(1.0)


class TestTermination:
    def test_underivable_loop_terminates_via_widening(self):
        prediction = analyse(
            "func main(n) { var x = 1; while (x < 100000) { x = x * 3; } return x; }"
        )
        assert not getattr(prediction, "aborted", False)
        assert prediction.branch_probability

    def test_interlocked_loops_terminate(self):
        prediction = analyse(
            """
            func main(n) {
              var a = 0;
              var b = 100;
              while (a < b) {
                a = a + 3;
                b = b - 2;
              }
              return a + b;
            }
            """
        )
        assert prediction.branch_probability

    def test_counters_linear_in_size(self):
        small = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 10; i = i + 1) { t = t + 1; } return t; }"
        )
        big_source = "func main(n) { var t = 0;" + "".join(
            f"for (i{k} = 0; i{k} < 10; i{k} = i{k} + 1) {{ t = t + 1; }}"
            for k in range(10)
        ) + "return t; }"
        big = analyse(big_source)
        ratio = big.counters.expr_evaluations / small.counters.expr_evaluations
        assert ratio < 30  # ~10x the loops must not explode quadratically


class TestConfigKnobs:
    def test_max_ranges_one_still_sound(self):
        prediction = analyse(
            """
            func main(n) {
              var y = 0;
              for (x = 0; x < 10; x = x + 1) {
                if (x > 7) { y = 1; } else { y = x; }
                if (y == 1) { n = n + 1; }
              }
              return n;
            }
            """,
            config=VRPConfig(max_ranges=1),
        )
        # With one range per variable the 30% branch degrades but stays
        # a valid probability.
        assert 0.0 <= prediction.branch_probability["join7"] <= 1.0

    def test_derivation_disabled_still_correct(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < 10; i = i + 1) { t = t + 1; } return t; }",
            config=VRPConfig(derive_loops=False),
        )
        (probability,) = prediction.branch_probability.values()
        # Brute-force iteration reaches the same fixed point: 10/11.
        assert probability == pytest.approx(10 / 11, abs=0.02)

    def test_ssa_first_ordering_same_result(self):
        source = (
            "func main(n) { var t = 0; for (i = 0; i < 10; i = i + 1) { t = t + 1; } return t; }"
        )
        flow_first = analyse(source)
        ssa_first = analyse(source, config=VRPConfig(prefer_flow_list=False))
        assert flow_first.branch_probability == pytest.approx(
            ssa_first.branch_probability
        )

    def test_symbolic_disabled_no_symbols_in_values(self):
        prediction = analyse(
            "func main(n) { var t = 0; for (i = 0; i < n; i = i + 1) { t = t + 1; } return t; }",
            config=VRPConfig(symbolic=False),
        )
        for rangeset in prediction.values.values():
            if rangeset.is_set:
                assert not rangeset.symbols()


class TestOscillationFreeze:
    def test_alternating_recurrence_terminates(self):
        # q = 4 - q flips between two values; the probability weights of
        # the merged set never settle, so the phi must freeze.
        prediction = analyse(
            """
            func main(n) {
              var q = 1;
              for (i = 0; i < 100; i = i + 1) {
                q = 4 - q;
              }
              return q;
            }
            """
        )
        assert not prediction.aborted
        assert prediction.branch_probability

    def test_mutually_oscillating_pair_terminates(self):
        prediction = analyse(
            """
            func main(n) {
              var a = 0;
              var b = 10;
              for (i = 0; i < 50; i = i + 1) {
                var t = a;
                a = b;
                b = t;
              }
              return a - b;
            }
            """
        )
        assert not prediction.aborted
