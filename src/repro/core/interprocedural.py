"""Interprocedural value range propagation (paper §3.7).

Jump functions: at each call site, the argument operands' range sets are
recorded; a callee's formal parameter range is the call-frequency
weighted merge of the jump functions over its call sites.  Return
functions flow the callee's merged return range back into call results.
"The entire program is treated almost as if it were one huge control
flow graph": we iterate per-function propagation in bottom-up call-graph
order until parameter and return ranges reach a fixed point (recursive
components iterate; a round cap bounds pathological cases).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core import counters as counters_mod
from repro.core.callgraph import CallGraph
from repro.core.config import VRPConfig
from repro.core.perf import context as perf_context
from repro.core.propagation import (
    FunctionPrediction,
    HeuristicFn,
    PropagationEngine,
)
from repro.core.rangeset import BOTTOM, RangeSet, TOP, merge_weighted
from repro.ir.function import Module
from repro.ir.instructions import Call
from repro.ir.ssa import SSAInfo
from repro.ir.values import Constant, Temp


class ModulePrediction:
    """Predictions for every function of a module."""

    def __init__(
        self,
        module: Module,
        functions: Dict[str, FunctionPrediction],
        counters: counters_mod.Counters,
        rounds: int,
    ):
        self.module = module
        self.functions = functions
        self.counters = counters
        self.rounds = rounds

    def branch_probability(self, function: str, label: str) -> Optional[float]:
        prediction = self.functions.get(function)
        if prediction is None:
            return None
        return prediction.branch_probability.get(label)

    def all_branches(self) -> Dict[Tuple[str, str], float]:
        out: Dict[Tuple[str, str], float] = {}
        for name, prediction in self.functions.items():
            for label, probability in prediction.branch_probability.items():
                out[(name, label)] = probability
        return out

    def heuristic_branches(self) -> set:
        return {
            (name, label)
            for name, prediction in self.functions.items()
            for label in prediction.used_heuristic
        }

    def __repr__(self) -> str:
        return (
            f"ModulePrediction({self.module.name!r}, "
            f"{len(self.functions)} functions, rounds={self.rounds})"
        )


class InterproceduralVRP:
    """Whole-program value range propagation driver."""

    def __init__(
        self,
        module: Module,
        ssa_infos: Dict[str, SSAInfo],
        config: Optional[VRPConfig] = None,
        heuristic: Optional[HeuristicFn] = None,
        entry: str = "main",
        entry_param_ranges: Optional[Dict[str, RangeSet]] = None,
        max_rounds: int = 8,
    ):
        self.module = module
        self.ssa_infos = ssa_infos
        self.config = config or VRPConfig()
        self.heuristic = heuristic
        self.entry = entry
        self.entry_param_ranges = entry_param_ranges or {}
        self.max_rounds = max_rounds
        self.callgraph = CallGraph(module)
        # Jump-function results: function -> param name -> merged range.
        self.param_sets: Dict[str, Dict[str, RangeSet]] = {}
        # Return functions: function -> merged return range.
        self.return_sets: Dict[str, RangeSet] = {}
        self.predictions: Dict[str, FunctionPrediction] = {}

    # -- driver ---------------------------------------------------------------

    def run(self) -> ModulePrediction:
        # Activated here as well as per-engine so the cross-engine work
        # (jump-function merges below) shares the caches.
        with perf_context.activate(self.config.perf):
            return self._run()

    def _run(self) -> ModulePrediction:
        from repro.observability import tracer as tracing

        tracer = tracing.active()
        total = counters_mod.Counters()
        order = self.callgraph.bottom_up_order()
        rounds_used = 0
        for round_number in range(1, self.max_rounds + 1):
            rounds_used = round_number
            changed = False
            with tracer.span("interprocedural-round"):
                for name in order:
                    prediction = self._analyse_one(name)
                    self.predictions[name] = prediction
                    if self._record_return(name, prediction):
                        changed = True
                if self._recompute_jump_functions():
                    changed = True
            if not changed and round_number > 1:
                break
        for prediction in self.predictions.values():
            total.merge(prediction.counters)
        return ModulePrediction(self.module, dict(self.predictions), total, rounds_used)

    # -- per-function analysis -----------------------------------------------------

    def _analyse_one(self, name: str) -> FunctionPrediction:
        function = self.module.function(name)
        info = self.ssa_infos[name]
        engine = PropagationEngine(
            function,
            info,
            config=self.config,
            heuristic=self.heuristic,
            param_ranges=self._params_for(name),
            call_effect=self._call_effect,
        )
        return engine.run()

    def _params_for(self, name: str) -> Dict[str, RangeSet]:
        if name == self.entry:
            base = {
                param: self.entry_param_ranges.get(param, BOTTOM)
                for param in self.module.function(name).params
            }
            return base
        known = self.param_sets.get(name)
        if known is None:
            # Not called (yet): unknown parameters.
            return {param: BOTTOM for param in self.module.function(name).params}
        return known

    def _call_effect(self, call: Call) -> RangeSet:
        return self.return_sets.get(call.callee, BOTTOM)

    # -- fixed-point bookkeeping ------------------------------------------------------

    def _record_return(self, name: str, prediction: FunctionPrediction) -> bool:
        new_set = prediction.return_set
        if new_set.is_top:
            new_set = BOTTOM
        old_set = self.return_sets.get(name)
        if old_set is not None and old_set.approx_equal(new_set, self.config.tolerance):
            return False
        self.return_sets[name] = new_set
        return True

    def _recompute_jump_functions(self) -> bool:
        """Merge argument ranges over all call sites, call-frequency weighted."""
        changed = False
        accumulated: Dict[str, List[List[Tuple[float, RangeSet]]]] = {}
        for site in self.callgraph.call_sites:
            caller_prediction = self.predictions.get(site.caller)
            if caller_prediction is None:
                continue
            callee = site.callee
            if callee not in self.module.functions:
                continue
            params = self.module.function(callee).params
            weight = caller_prediction.block_frequency.get(site.block_label, 0.0)
            if weight <= 0.0:
                weight = 1e-6  # cold call sites still contribute a little
            slots = accumulated.setdefault(
                callee, [[] for _ in params]
            )
            for position, arg in enumerate(site.instruction.args):
                if position >= len(params):
                    break
                slots[position].append(
                    (weight, self._argument_range(caller_prediction, arg))
                )
        for callee, slots in accumulated.items():
            params = self.module.function(callee).params
            merged: Dict[str, RangeSet] = {}
            for position, param in enumerate(params):
                contributions = slots[position] if position < len(slots) else []
                merged_set = merge_weighted(
                    contributions, max_ranges=self.config.max_ranges
                )
                if merged_set.is_top:
                    merged_set = BOTTOM
                merged[param] = merged_set
            old = self.param_sets.get(callee)
            if old is None or any(
                not old.get(param, BOTTOM).approx_equal(
                    merged[param], self.config.tolerance
                )
                for param in params
            ):
                self.param_sets[callee] = merged
                changed = True
        return changed

    def _argument_range(
        self, prediction: FunctionPrediction, arg
    ) -> RangeSet:
        if isinstance(arg, Constant):
            return RangeSet.constant(arg.value)
        if isinstance(arg, Temp):
            value = prediction.values.get(arg.name, BOTTOM)
            if value.is_top:
                return BOTTOM
            # Symbolic ranges name SSA variables of the *caller*; they are
            # meaningless inside the callee, so widen them away.
            if value.is_set and value.symbols():
                hull = value.hull()
                if hull is not None and not hull.symbols():
                    return RangeSet.from_ranges([hull])
                return BOTTOM
            return value
        return BOTTOM


def analyse_module(
    module: Module,
    ssa_infos: Dict[str, SSAInfo],
    config: Optional[VRPConfig] = None,
    heuristic: Optional[HeuristicFn] = None,
    entry: str = "main",
    entry_param_ranges: Optional[Dict[str, RangeSet]] = None,
    max_rounds: int = 8,
) -> ModulePrediction:
    """Run interprocedural value range propagation over a module."""
    driver = InterproceduralVRP(
        module,
        ssa_infos,
        config=config,
        heuristic=heuristic,
        entry=entry,
        entry_param_ranges=entry_param_ranges,
        max_rounds=max_rounds,
    )
    return driver.run()
