"""SARIF 2.1.0 export for diagnostics reports.

Produces a minimal-but-valid SARIF log: one run, one tool driver with
the full rule catalogue, one result per finding.  Evidence payloads ride
in each result's ``properties`` bag, so nothing is lost relative to the
JSON renderer.  :func:`validate_sarif` is a structural self-check (the
container has no jsonschema package; the checks mirror the schema's
required properties for the subset we emit).
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.diagnostics.engine import CheckReport
from repro.diagnostics.findings import ERROR, INFO, RULES, WARNING

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "repro-check"

# SARIF result levels for our severities ("info" maps to "note").
LEVEL_FOR_SEVERITY = {ERROR: "error", WARNING: "warning", INFO: "note"}


def sarif_report(report: CheckReport, artifact_uri: Optional[str] = None) -> dict:
    """Build the SARIF log object for one check run."""
    rule_index = {rule.id: i for i, rule in enumerate(RULES)}
    uri = artifact_uri or report.program
    results = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": LEVEL_FOR_SEVERITY.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        **(
                            {"region": {"startLine": finding.line}}
                            if finding.line
                            else {}
                        ),
                    },
                    "logicalLocations": [
                        {
                            "name": finding.function,
                            "fullyQualifiedName": (
                                f"{finding.function}/{finding.block}"
                            ),
                            "kind": "function",
                        }
                    ],
                }
            ],
            "properties": {"evidence": finding.evidence},
        }
        if finding.related:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        **(
                            {"region": {"startLine": site["line"]}}
                            if site.get("line")
                            else {}
                        ),
                    },
                    "logicalLocations": [
                        {
                            "name": site["function"],
                            "fullyQualifiedName": (
                                f"{site['function']}/{site['block']}"
                            ),
                            "kind": "function",
                        }
                    ],
                    "message": {"text": site["message"]},
                }
                for site in finding.related
            ]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://dl.acm.org/doi/10.1145/207110.207117"
                        ),
                        "rules": [
                            {
                                "id": rule.id,
                                "shortDescription": {"text": rule.summary},
                                "fullDescription": {"text": rule.description},
                                "defaultConfiguration": {
                                    "level": LEVEL_FOR_SEVERITY[
                                        rule.default_severity
                                    ]
                                },
                            }
                            for rule in RULES
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: CheckReport, artifact_uri: Optional[str] = None) -> str:
    return json.dumps(sarif_report(report, artifact_uri), indent=1, sort_keys=True)


def validate_sarif(log: dict) -> List[str]:
    """Structural SARIF 2.1.0 validation; returns problems (empty = valid)."""
    problems: List[str] = []
    if log.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = log.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        driver = run.get("tool", {}).get("driver")
        if not isinstance(driver, dict) or "name" not in driver:
            problems.append(f"{where}.tool.driver.name is required")
            continue
        rules = driver.get("rules", [])
        rule_ids = []
        for rule in rules:
            if "id" not in rule:
                problems.append(f"{where}: every rule needs an id")
            else:
                rule_ids.append(rule["id"])
        for result_index, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{result_index}]"
            message = result.get("message")
            if not isinstance(message, dict) or "text" not in message:
                problems.append(f"{rwhere}.message.text is required")
            level = result.get("level")
            if level not in ("none", "note", "warning", "error"):
                problems.append(f"{rwhere}.level {level!r} is invalid")
            rule_id = result.get("ruleId")
            if rule_id is not None and rule_ids and rule_id not in rule_ids:
                problems.append(f"{rwhere}.ruleId {rule_id!r} not in driver rules")
            index = result.get("ruleIndex")
            if index is not None and rule_ids:
                if not (0 <= index < len(rule_ids)) or rule_ids[index] != rule_id:
                    problems.append(
                        f"{rwhere}.ruleIndex {index} does not match ruleId"
                    )
            for loc_index, location in enumerate(result.get("locations", [])):
                problems.extend(
                    _validate_location(
                        location, f"{rwhere}.locations[{loc_index}]"
                    )
                )
            for loc_index, location in enumerate(
                result.get("relatedLocations", [])
            ):
                lwhere = f"{rwhere}.relatedLocations[{loc_index}]"
                problems.extend(_validate_location(location, lwhere))
                message = location.get("message")
                if message is not None and "text" not in message:
                    problems.append(f"{lwhere}.message.text is required")
    return problems


def _validate_location(location: dict, where: str) -> List[str]:
    problems: List[str] = []
    physical = location.get("physicalLocation")
    if physical is None:
        return problems
    artifact = physical.get("artifactLocation")
    if not isinstance(artifact, dict) or "uri" not in artifact:
        problems.append(
            f"{where}.physicalLocation.artifactLocation.uri is required"
        )
    region = physical.get("region")
    if region is not None:
        start = region.get("startLine")
        if not isinstance(start, int) or start < 1:
            problems.append(
                f"{where}.physicalLocation.region.startLine must be >= 1"
            )
    return problems
