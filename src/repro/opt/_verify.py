"""Post-pass IR verification (``VRPConfig.verify_ir``).

Every IR-mutating optimisation calls :func:`verify_after` before
returning.  With verification off (the production default) the call is
a single boolean test; with it on (the test suite turns it on
process-wide via ``set_default_verify_ir``) corruption is reported at
the pass that introduced it, with each problem prefixed by the pass
name.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import default_verify_ir
from repro.ir.function import Function
from repro.ir.verifier import VerificationError, verify_function


def verify_after(
    function: Function, pass_name: str, enabled: Optional[bool] = None
) -> None:
    """Re-verify ``function`` (SSA form) after ``pass_name`` mutated it."""
    if not (default_verify_ir() if enabled is None else enabled):
        return
    param_names = {f"{param}.0" for param in function.params}
    try:
        verify_function(function, ssa=True, param_names=param_names)
    except VerificationError as exc:
        raise VerificationError(
            function.name,
            [f"after {pass_name}: {problem}" for problem in exc.problems],
        ) from exc
